"""Tests for workload diagnostics — including validation of the analytic
estimates against actual simulations."""

import pytest

from repro.core.eewa import EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    benchmark_program,
    benchmark_spec,
    memory_bound_spec,
)
from repro.workloads.generators import generate_program
from repro.workloads.synthetic import uniform_spec
from repro.workloads.validation import diagnose


class TestDiagnostics:
    def test_sha1_is_granularity_bound_with_slack(self):
        d = diagnose(benchmark_spec("SHA-1"), 16)
        assert d.binding_constraint == "granularity"
        assert d.slack_cores > 5.0
        assert d.eewa_can_save
        anchors = [c for c in d.classes if c.is_anchor]
        assert [a.name for a in anchors] == ["sha1_chunk"]

    def test_uniform_workload_capacity_bound(self):
        d = diagnose(uniform_spec(tasks=256, mean_seconds=2e-3), 16)
        assert d.binding_constraint == "capacity"
        assert d.slack_cores == pytest.approx(0.0, abs=1e-9)
        assert not d.eewa_can_save

    def test_memory_bound_app_flagged(self):
        d = diagnose(memory_bound_spec(), 16)
        assert d.likely_memory_bound_app
        assert not d.eewa_can_save

    def test_shares_sum_to_one(self):
        for name in BENCHMARK_NAMES:
            d = diagnose(benchmark_spec(name), 16)
            assert sum(c.share_of_work for c in d.classes) == pytest.approx(1.0)

    def test_summary_renders(self):
        text = diagnose(benchmark_spec("DMC"), 16).summary()
        assert "DMC on 16 cores" in text
        assert "[anchor]" in text

    def test_fewer_cores_less_slack(self):
        d16 = diagnose(benchmark_spec("DMC"), 16)
        d4 = diagnose(benchmark_spec("DMC"), 4)
        assert d4.slack_cores < d16.slack_cores


class TestAgainstSimulation:
    @pytest.mark.parametrize("name", ["SHA-1", "DMC", "JE"])
    def test_expected_iteration_matches_measured(self, name):
        """The analytic iteration estimate lands within 25% of the measured
        first-batch duration under Cilk."""
        machine = opteron_8380_machine()
        d = diagnose(benchmark_spec(name), 16)
        program = benchmark_program(name, batches=2, seed=11)
        result = simulate(program, CilkScheduler(), machine, seed=11)
        measured = result.trace.batch_durations()[0]
        assert d.expected_iteration_s == pytest.approx(measured, rel=0.25)

    def test_eewa_can_save_predicts_scaling(self):
        """Where the diagnostic says 'can save', EEWA scales something down;
        where it says saturated, EEWA keeps everything fast."""
        machine = opteron_8380_machine()

        slack_spec = benchmark_spec("SHA-1")
        assert diagnose(slack_spec, 16).eewa_can_save
        program = generate_program(slack_spec, batches=4, seed=11)
        result = simulate(program, EEWAScheduler(), machine, seed=11)
        assert any(h[0] < 16 for h in result.trace.level_histograms()[1:])

        flat_spec = uniform_spec(tasks=256, mean_seconds=2e-3)
        assert not diagnose(flat_spec, 16).eewa_can_save
        program = generate_program(flat_spec, batches=4, seed=11)
        result = simulate(program, EEWAScheduler(), machine, seed=11)
        assert all(h[0] == 16 for h in result.trace.level_histograms())
