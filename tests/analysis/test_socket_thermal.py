"""Tests for socket-level thermal aggregation."""

import pytest

from repro.analysis.thermal import _merge_power_series, socket_thermal_report
from repro.core.eewa import EEWAScheduler
from repro.errors import ConfigurationError
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program


class TestMergePowerSeries:
    def test_aligned_pieces_sum(self):
        a = [(0.0, 1.0, 10.0), (1.0, 2.0, 5.0)]
        b = [(0.0, 1.0, 2.0), (1.0, 2.0, 2.0)]
        merged = _merge_power_series([a, b])
        assert merged == [(0.0, 1.0, 12.0), (1.0, 2.0, 7.0)]

    def test_misaligned_boundaries(self):
        a = [(0.0, 2.0, 10.0)]
        b = [(0.0, 1.0, 4.0), (1.0, 2.0, 6.0)]
        merged = _merge_power_series([a, b])
        assert merged == [(0.0, 1.0, 14.0), (1.0, 2.0, 16.0)]

    def test_adjacent_equal_pieces_coalesce(self):
        a = [(0.0, 1.0, 3.0), (1.0, 2.0, 3.0)]
        merged = _merge_power_series([a])
        assert merged == [(0.0, 2.0, 3.0)]

    def test_energy_conserved(self):
        """Sum of piece energies equals the sum over inputs."""
        a = [(0.0, 0.7, 11.0), (0.7, 2.0, 4.0)]
        b = [(0.0, 1.3, 6.0), (1.3, 2.0, 9.0)]
        merged = _merge_power_series([a, b])
        e_in = sum((t1 - t0) * w for t0, t1, w in a + b)
        e_out = sum((t1 - t0) * w for t0, t1, w in merged)
        assert e_out == pytest.approx(e_in)


class TestSocketReport:
    @pytest.fixture(scope="class")
    def runs(self):
        machine = opteron_8380_machine()
        program = benchmark_program("SHA-1", batches=10, seed=11)
        cilk = simulate(
            program, CilkScheduler(), machine, seed=11, record_power_series=True
        )
        eewa = simulate(
            program, EEWAScheduler(), machine, seed=11, record_power_series=True
        )
        return cilk, eewa

    def test_default_quad_grouping(self, runs):
        cilk, _ = runs
        report = socket_thermal_report(cilk)
        assert len(report.cores) == 4

    def test_cilk_sockets_uniform_eewa_skewed(self, runs):
        cilk, eewa = runs
        c = [s.peak_c for s in socket_thermal_report(cilk).cores]
        e = [s.peak_c for s in socket_thermal_report(eewa).cores]
        assert max(c) - min(c) < 1.0  # all-fast: uniform heat
        assert max(e) - min(e) > 3.0  # EEWA: hot fast socket, cool rest
        # EEWA's coolest socket is well below any Cilk socket.
        assert min(e) < min(c) - 3.0

    def test_explicit_groups(self, runs):
        cilk, _ = runs
        report = socket_thermal_report(cilk, groups=((0,), tuple(range(1, 16))))
        assert len(report.cores) == 2

    def test_requires_power_series(self):
        machine = opteron_8380_machine()
        program = benchmark_program("MD5", batches=2, seed=1)
        result = simulate(program, CilkScheduler(), machine, seed=1)
        with pytest.raises(ConfigurationError):
            socket_thermal_report(result)

    def test_uses_dvfs_domains_when_present(self):
        machine = opteron_8380_machine(per_socket_dvfs=True)
        program = benchmark_program("MD5", batches=3, seed=1)
        result = simulate(
            program, EEWAScheduler(), machine, seed=1, record_power_series=True
        )
        report = socket_thermal_report(result)
        assert len(report.cores) == 4
