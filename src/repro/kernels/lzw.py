"""Lempel-Ziv-Welch compression with variable-width codes.

The classic dictionary coder of the paper's LZW benchmark: codes start at
9 bits over the 256-entry byte alphabet plus a CLEAR code, widen as the
dictionary grows, and reset when it fills.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.bitio import BitReader, BitWriter

_MIN_WIDTH = 9
_MAX_WIDTH = 16
_CLEAR = 256
_FIRST_CODE = 257


def lzw_compress(data: bytes) -> bytes:
    """Compress ``data``; the output embeds a 32-bit code count header."""
    writer = BitWriter()
    codes: list[int] = []

    table: dict[bytes, int] = {bytes([b]): b for b in range(256)}
    next_code = _FIRST_CODE
    width = _MIN_WIDTH
    prefix = b""

    def emit(code: int) -> None:
        codes.append(code)

    for i in range(len(data)):
        symbol = data[i : i + 1]
        candidate = prefix + symbol
        if candidate in table:
            prefix = candidate
            continue
        emit(table[prefix])
        table[candidate] = next_code
        next_code += 1
        prefix = symbol
        if next_code > (1 << _MAX_WIDTH) - 1:
            emit(_CLEAR)
            table = {bytes([b]): b for b in range(256)}
            next_code = _FIRST_CODE
    if prefix:
        emit(table[prefix])

    # Serialise: count, then codes at the width implied by replaying growth.
    out = BitWriter()
    out.write_bits(len(codes), 32)
    width = _MIN_WIDTH
    size = _FIRST_CODE
    for code in codes:
        out.write_bits(code, width)
        if code == _CLEAR:
            width = _MIN_WIDTH
            size = _FIRST_CODE
        else:
            size += 1
            if size > (1 << width) - 1 and width < _MAX_WIDTH:
                width += 1
    return out.getvalue()


def lzw_decompress(payload: bytes) -> bytes:
    """Inverse of :func:`lzw_compress`.

    Corrupt payloads raise :class:`~repro.errors.KernelError` rather than
    looping: the embedded code count is validated against the number of
    codes the payload could possibly hold (every code is >= 9 bits).
    """
    reader = BitReader(payload)
    count = reader.read_bits(32)
    max_codes = (len(payload) * 8 - 32) // _MIN_WIDTH
    if count > max_codes:
        raise KernelError(
            f"corrupt LZW header: {count} codes claimed, payload holds <= {max_codes}"
        )

    table: dict[int, bytes] = {b: bytes([b]) for b in range(256)}
    next_code = _FIRST_CODE
    width = _MIN_WIDTH
    out = bytearray()
    previous: bytes | None = None

    for _ in range(count):
        code = reader.read_bits(width)
        if code == _CLEAR:
            table = {b: bytes([b]) for b in range(256)}
            next_code = _FIRST_CODE
            width = _MIN_WIDTH
            previous = None
            continue
        if previous is None:
            entry = table.get(code)
            if entry is None:
                raise KernelError(f"invalid initial LZW code {code}")
        else:
            if code in table:
                entry = table[code]
            elif code == next_code:
                entry = previous + previous[:1]  # the KwKwK special case
            else:
                raise KernelError(f"invalid LZW code {code}")
            table[next_code] = previous + entry[:1]
            next_code += 1
        out.extend(entry)
        previous = entry
        # Mirror the encoder's width schedule. The encoder widens after
        # assigning `next_code`; the decoder's table lags by one insert, so
        # widen when the *next* insert would not fit.
        if next_code + 1 > (1 << width) - 1 and width < _MAX_WIDTH:
            width += 1
    return bytes(out)
