"""Workload-spec diagnostics.

Answers, *before* running any simulation, the questions a user tuning a
workload for EEWA keeps asking:

* what iteration time should I expect, and what bounds it?
* how much slack (idle capacity at full speed) does the batch have —
  i.e. how much can EEWA possibly save?
* which classes are granularity anchors (single task comparable to the
  whole iteration) vs divisible filler?
* is the workload memory-bound enough to trip the Section IV-D fallback?

The estimates use the same first-order reasoning as the CC table; they are
deliberately analytic (no simulation) and are validated against simulated
runs in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.spec import TaskClassSpec, WorkloadSpec


@dataclass(frozen=True)
class ClassDiagnostics:
    """Static analysis of one task class at a given machine size."""

    name: str
    count: int
    mean_seconds: float
    share_of_work: float
    #: mean task time / expected iteration time — > ~0.8 marks an anchor
    granularity_ratio: float
    is_anchor: bool
    memory_bound: bool


@dataclass(frozen=True)
class WorkloadDiagnostics:
    """Static analysis of a workload on an ``m``-core machine."""

    name: str
    num_cores: int
    expected_iteration_s: float
    #: what bounds the iteration: "granularity" (longest task) or "capacity"
    binding_constraint: str
    utilization: float
    #: cores' worth of capacity idle at full speed — EEWA's raw material
    slack_cores: float
    classes: tuple[ClassDiagnostics, ...]
    likely_memory_bound_app: bool

    @property
    def eewa_can_save(self) -> bool:
        """Heuristic: is there enough slack for any frequency scaling?"""
        return self.slack_cores >= 1.0 and not self.likely_memory_bound_app

    def summary(self) -> str:
        lines = [
            f"{self.name} on {self.num_cores} cores:",
            f"  expected iteration ~{self.expected_iteration_s*1e3:.1f} ms "
            f"({self.binding_constraint}-bound)",
            f"  utilisation ~{self.utilization:.0%}, "
            f"slack ~{self.slack_cores:.1f} cores",
        ]
        for c in self.classes:
            tag = " [anchor]" if c.is_anchor else ""
            tag += " [memory-bound]" if c.memory_bound else ""
            lines.append(
                f"  - {c.name}: {c.count} x {c.mean_seconds*1e3:.2f} ms "
                f"({c.share_of_work:.0%} of work){tag}"
            )
        if self.likely_memory_bound_app:
            lines.append("  ! most work is memory-bound: EEWA will fall back")
        elif not self.eewa_can_save:
            lines.append("  ! machine saturated: EEWA will keep every core fast")
        return "\n".join(lines)


#: Granularity ratio above which a class is considered an iteration anchor.
ANCHOR_RATIO = 0.8

#: Miss-intensity threshold mirroring the profiler default.
_MEM_THRESHOLD = 0.01


def _class_memory_bound(cls: TaskClassSpec) -> bool:
    return cls.miss_intensity > _MEM_THRESHOLD or cls.mem_stall_fraction > 0.5


def diagnose(spec: WorkloadSpec, num_cores: int = 16) -> WorkloadDiagnostics:
    """Analyse ``spec`` for an ``m``-core machine at the fastest frequency."""
    work = spec.work_per_batch
    longest = max(c.mean_seconds for c in spec.classes)
    capacity_time = work / num_cores
    expected = max(longest, capacity_time)
    binding = "granularity" if longest > capacity_time else "capacity"
    utilization = min(1.0, work / (num_cores * expected))
    slack = num_cores - work / expected

    classes = []
    mem_work = 0.0
    for cls in spec.classes:
        mem = _class_memory_bound(cls)
        if mem:
            mem_work += cls.total_seconds
        ratio = cls.mean_seconds / expected
        classes.append(
            ClassDiagnostics(
                name=cls.name,
                count=cls.count,
                mean_seconds=cls.mean_seconds,
                share_of_work=cls.total_seconds / work,
                granularity_ratio=ratio,
                is_anchor=ratio >= ANCHOR_RATIO,
                memory_bound=mem,
            )
        )

    return WorkloadDiagnostics(
        name=spec.name,
        num_cores=num_cores,
        expected_iteration_s=expected,
        binding_constraint=binding,
        utilization=utilization,
        slack_cores=slack,
        classes=tuple(classes),
        likely_memory_bound_app=mem_work > work / 2,
    )
