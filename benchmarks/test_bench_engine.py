"""Micro-benchmarks of the simulation engine itself.

Measures simulated-task throughput (tasks retired per wall second) for the
plain and grouped schedulers — the engine's own efficiency, independent of
the paper's results.
"""

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.topology import dyadic_test_machine, opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate
from repro.sim.events import EventKind, EventQueue
from repro.workloads.periodic import periodic_program

REF = 2.5e9

#: Events per iteration of the event-queue micro benchmark.
QUEUE_EVENTS = 10_000


def small_program(batches=4, tasks=128):
    return [
        flat_batch(
            i, [TaskSpec(f"c{t % 4}", cpu_cycles=0.002 * REF) for t in range(tasks)]
        )
        for i in range(batches)
    ]


def test_bench_engine_cilk_throughput(benchmark):
    machine = opteron_8380_machine()
    program = small_program()
    result = benchmark(lambda: simulate(program, CilkScheduler(), machine, seed=1))
    assert result.tasks_executed == 4 * 128


def test_bench_engine_eewa_throughput(benchmark):
    machine = opteron_8380_machine()
    program = small_program()
    result = benchmark(lambda: simulate(program, EEWAScheduler(), machine, seed=1))
    assert result.tasks_executed == 4 * 128


def test_bench_engine_many_cores(benchmark):
    machine = opteron_8380_machine(num_cores=64)
    program = small_program(batches=2, tasks=512)
    result = benchmark(lambda: simulate(program, CilkScheduler(), machine, seed=1))
    assert result.tasks_executed == 2 * 512


def _steady_eewa():
    """A 100-batch strictly periodic EEWA cell on the dyadic machine —
    the steady-state shape the engine's fast-forward targets."""
    policy = EEWAScheduler(
        EEWAConfig(
            overhead_model=OverheadModel(
                base_seconds=2.0**-11, per_cell_seconds=2.0**-17
            )
        )
    )
    return periodic_program(100, 4, 8), policy, dyadic_test_machine(num_cores=8)


def test_bench_engine_eewa_100batch_ff(benchmark):
    program, _, machine = _steady_eewa()

    def run():
        _, policy, _ = _steady_eewa()
        return simulate(program, policy, machine, seed=11)

    result = benchmark(run)
    assert result.batches_fast_forwarded >= 90
    benchmark.extra_info["batches_simulated"] = result.batches_simulated
    benchmark.extra_info["batches_fast_forwarded"] = result.batches_fast_forwarded


def test_bench_engine_eewa_100batch_full(benchmark):
    program, _, machine = _steady_eewa()

    def run():
        _, policy, _ = _steady_eewa()
        return simulate(program, policy, machine, seed=11, fast_forward=False)

    result = benchmark(run)
    assert result.batches_fast_forwarded == 0
    benchmark.extra_info["batches_simulated"] = result.batches_simulated
    benchmark.extra_info["batches_fast_forwarded"] = result.batches_fast_forwarded


def test_bench_event_queue(benchmark):
    """Raw schedule/pop throughput of the tuple-based event heap.

    Interleaves near-future and far-future events so the heap actually
    sifts; reported ops/sec × QUEUE_EVENTS = events/sec.
    """

    def churn():
        q = EventQueue()
        kind = EventKind.CORE_READY
        popped = 0
        for i in range(QUEUE_EVENTS // 2):
            q.schedule(1e-6, kind, core_id=i & 15)
            q.schedule(1e-3 + i * 1e-9, kind, core_id=i & 15)
            if i & 1:
                q.pop()
                popped += 1
        while q:
            q.pop()
            popped += 1
        return popped

    assert benchmark(churn) == QUEUE_EVENTS
