"""Long-horizon golden suite: 120-batch fast-forwarding cells.

Complements ``test_golden_traces.py`` (which pins jittered cells the
fast-forward never engages on): every cell here replays most of its 120
batches arithmetically, and must match both the pinned fixture *and* a
fresh full event-by-event run, bit for bit.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import golden_longhorizon_gen as gen  # noqa: E402

FIXTURE = json.loads(gen.FIXTURE.read_text())
CELLS = list(gen.cells())


def test_fixture_covers_every_cell():
    assert {f"{p}/seed{s}" for p, s in CELLS} == set(FIXTURE)


def test_steady_policies_fast_forward_most_batches():
    for policy in ("wats", "eewa"):
        for seed in gen.SEEDS:
            assert FIXTURE[f"{policy}/seed{seed}"]["batches_fast_forwarded"] > 100


@pytest.mark.parametrize(
    "policy,seed", CELLS, ids=[f"{p}-s{s}" for p, s in CELLS]
)
def test_longhorizon_cell(policy, seed):
    want = FIXTURE[f"{policy}/seed{seed}"]
    got = gen.run_cell(policy, seed)
    # Scalars first for a readable diff; the fingerprint covers everything.
    assert got["total_time"] == want["total_time"]
    assert got["total_joules"] == want["total_joules"]
    assert got == want


@pytest.mark.parametrize(
    "policy,seed", CELLS, ids=[f"{p}-s{s}" for p, s in CELLS]
)
def test_longhorizon_cell_matches_full_simulation(policy, seed):
    want = FIXTURE[f"{policy}/seed{seed}"]
    full = gen.run_cell(policy, seed, fast_forward=False)
    assert full["batches_fast_forwarded"] == 0
    assert full["fingerprint"] == want["fingerprint"]
    scalars = {k: v for k, v in want.items() if k != "batches_fast_forwarded"}
    assert {k: v for k, v in full.items() if k != "batches_fast_forwarded"} == scalars
