"""Service-layer tests: streaming, backpressure, deadlines, disconnects.

Real sockets on ephemeral ports (and a unix socket) — the same plumbing
``repro serve`` runs — plus direct ``stream_request`` calls where a test
needs to fail the write path deterministically.
"""

import contextlib
import http.client
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.experiments.parallel import CellSpec
from repro.scenario.session import Session
from repro.scenario.spec import ScenarioSpec
from repro.service.client import ServiceError, SweepServiceClient
from repro.service.protocol import (
    encode_frame,
    end_frame,
    parse_sweep_request,
)
from repro.service.server import serve, stream_request
from repro.sim.export import result_to_dict

BATCHES = 2


def scenario(workload="SHA-1", policy="cilk", seeds=(11,)):
    return {
        "schema": 3,
        "workload": workload,
        "policy": policy,
        "seeds": list(seeds),
        "batches": BATCHES,
    }


def cell(policy="cilk", seed=11, benchmark="SHA-1"):
    return CellSpec(benchmark=benchmark, policy=policy, seed=seed, batches=BATCHES)


@pytest.fixture()
def server(tmp_path):
    srv = serve(port=0, cache_dir=tmp_path / "cache")
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    assert srv.wait_until_serving()
    yield srv
    srv.drain_and_close()
    thread.join(timeout=10)


@pytest.fixture()
def client(server):
    return SweepServiceClient(
        f"http://127.0.0.1:{server.server_port}",
        backoff_base=0.01, backoff_cap=0.05,
    )


class TestGoldenBitIdentity:
    def test_eight_cell_grid_matches_local_run_exactly(self, server, client, tmp_path):
        # The acceptance grid: 2 benchmarks x 2 policies x 2 seeds through
        # HTTP must equal a local Session.run_grid bit for bit. Floats
        # survive a json round-trip exactly, so dict equality is the
        # bit-identity check.
        grid = [
            scenario(workload=w, policy=p, seeds=(11, 23))
            for w in ("SHA-1", "MD5")
            for p in ("cilk", "eewa")
        ]
        cells, end = client.run(grid)
        assert end["cells"] == 8
        assert end["streamed"] == 8
        assert len(cells) == 8

        with Session(cache_dir=tmp_path / "local-cache") as session:
            specs = [ScenarioSpec.from_dict(s) for s in grid]
            local = {
                (o.spec.benchmark, o.spec.policy, o.spec.seed): o.result
                for group in session.run_grid_detailed(specs)
                for o in group
            }
        for frame in cells:
            expected = result_to_dict(
                local[(frame["benchmark"], frame["policy"], frame["seed"])]
            )
            assert frame["result"] == json.loads(json.dumps(expected))

    def test_cells_arrive_with_stable_request_indices(self, server, client):
        cells, _ = client.run([scenario(seeds=(11, 23, 37))])
        assert sorted(f["index"] for f in cells) == [0, 1, 2]
        assert {f["scenario"] for f in cells} == {0}


class TestCrossClientDedup:
    def test_two_concurrent_clients_share_one_simulation_per_cell(self, tmp_path):
        # A repeated cell resolves via in-flight coalescing (submitted
        # while the twin is queued) or via the cache/memo (submitted after
        # it completed) — both are cross-client sharing, and their sum is
        # deterministic regardless of thread interleaving.
        srv = serve(port=0, cache_dir=tmp_path / "shared-cache")
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        assert srv.wait_until_serving()
        try:
            grid = [scenario(seeds=(11, 23, 37, 41))]
            results = [None, None]

            def hit(slot):
                c = SweepServiceClient(f"http://127.0.0.1:{srv.server_port}")
                results[slot] = c.run(grid)

            workers = [
                threading.Thread(target=hit, args=(slot,)) for slot in (0, 1)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=120)
            assert all(r is not None for r in results)
            for cells, end in results:
                assert end["cells"] == 4 and end["streamed"] == 4

            stats = SweepServiceClient(
                f"http://127.0.0.1:{srv.server_port}"
            ).stats()
            engine = stats["engine"]
            assert engine["cells"] == 8
            assert engine["executed"] == 4
            assert engine["deduplicated"] + engine["cache_hits"] == 4
            assert stats["cache"]["entries"] == 4
            assert stats["server"]["requests"] == 2
        finally:
            srv.drain_and_close()
            thread.join(timeout=10)


class TestDeadline:
    def test_expiry_streams_resolved_cells_then_deadline_error(self, server, client):
        # Warm one cell, then ask for it plus a cold one with a zero
        # deadline: the warm cell streams (already resolved at submit),
        # the cold one is cancelled and the stream ends with a terminal
        # ``deadline`` error frame.
        client.run([scenario(seeds=(11,))])
        frames = list(client.stream(
            [scenario(seeds=(11, 23))], deadline_s=0
        ))
        kinds = [f["frame"] for f in frames]
        assert kinds == ["cell", "error"]
        assert frames[0]["seed"] == 11
        assert frames[0]["from_cache"]
        assert frames[1]["code"] == "deadline"
        assert "1 cells unresolved" in frames[1]["detail"]
        # The server survives; the cold cell runs fine on a fresh request.
        cells, end = client.run([scenario(seeds=(23,))])
        assert end["streamed"] == 1

    def test_run_raises_on_deadline_error_frame(self, server, client):
        with pytest.raises(ServiceError) as excinfo:
            client.run([scenario(seeds=(61,))], deadline_s=0)
        assert excinfo.value.code == "deadline"


class TestDisconnect:
    def test_disconnect_cancels_only_that_clients_queued_tickets(self, tmp_path):
        session = Session(cache_dir=None)
        with session:
            engine = session.engine
            # Another client's tickets for the same cells, already queued.
            other = [engine.submit(cell(seed=s)) for s in (11, 23, 37)]
            request = parse_sweep_request(
                {"scenarios": [scenario(seeds=(11, 23, 37))]}
            )
            wrote = []

            def failing_write(frame: bytes) -> None:
                wrote.append(frame)
                raise OSError("client went away")

            summary = stream_request(session, request, failing_write)
            assert summary["ended"] == "disconnect"
            assert len(wrote) == 1  # died on the first frame
            # The disconnected request's remaining tickets are withdrawn...
            assert engine.stats.cancelled >= 1
            # ...but the coalesced survivor still resolves every cell.
            for ticket in other:
                assert ticket.result().result.tasks_executed > 0

    def test_server_keeps_serving_after_a_client_is_killed_mid_stream(
        self, server, client
    ):
        # Open a raw connection, read the headers plus a partial body,
        # then slam the socket shut while cells are still queued.
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.server_port, timeout=30
        )
        body = json.dumps(
            {"scenarios": [scenario(seeds=(101, 102, 103, 104))]}
        )
        conn.request("POST", "/sweep", body=body,
                     headers={"Content-Type": "application/json"})
        sock = conn.sock  # grab before getresponse hands it to the reader
        resp = conn.getresponse()
        assert resp.status == 200
        resp.fp.readline()  # one frame, then vanish
        with contextlib.suppress(OSError):
            sock.shutdown(socket.SHUT_RDWR)
        resp.close()
        # The other client's sweep is untouched.
        cells, end = client.run([scenario(seeds=(11, 23))])
        assert end["streamed"] == 2
        deadline = time.monotonic() + 30
        while server.active_streams and time.monotonic() < deadline:
            time.sleep(0.05)
        assert server.active_streams == 0


class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after(self, tmp_path):
        srv = serve(port=0, cache_dir=None, max_pending=2)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        assert srv.wait_until_serving()
        try:
            engine = srv.session.engine
            parked = [engine.submit(cell(seed=s)) for s in (201, 202, 203)]
            conn = http.client.HTTPConnection(
                "127.0.0.1", srv.server_port, timeout=30
            )
            conn.request(
                "POST", "/sweep",
                body=json.dumps({"scenarios": [scenario(seeds=(11,))]}),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 429
            assert int(resp.headers["Retry-After"]) >= 1
            payload = json.loads(resp.read())
            assert payload["code"] == "backpressure"
            conn.close()

            # 429 then retry: drain the backlog in the background while a
            # retrying client waits its backoff out, then succeeds.
            def drain():
                time.sleep(0.05)
                for ticket in parked:
                    ticket.result()

            drainer = threading.Thread(target=drain)
            drainer.start()
            client = SweepServiceClient(
                f"http://127.0.0.1:{srv.server_port}",
                retries=8, backoff_base=0.05, backoff_cap=0.2,
            )
            cells, end = client.run([scenario(seeds=(11,))])
            drainer.join(timeout=60)
            assert end["streamed"] == 1
            assert client.backoff_log  # at least one 429 was waited out
        finally:
            srv.drain_and_close()
            thread.join(timeout=10)

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        srv = serve(port=0, cache_dir=None, max_pending=1)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        assert srv.wait_until_serving()
        try:
            parked = [
                srv.session.engine.submit(cell(seed=s)) for s in (301, 302)
            ]
            client = SweepServiceClient(
                f"http://127.0.0.1:{srv.server_port}",
                retries=1, backoff_base=0.01, backoff_cap=0.02,
            )
            with pytest.raises(ServiceError, match="retries exhausted"):
                client.run([scenario(seeds=(11,))])
            for ticket in parked:
                ticket.result()
        finally:
            srv.drain_and_close()
            thread.join(timeout=10)


class TestHttpSurface:
    def test_healthz(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.server_port)
        conn.request("GET", "/healthz")
        resp = conn.getresponse()
        assert resp.status == 200
        assert json.loads(resp.read()) == {"status": "ok"}
        conn.close()

    def test_unknown_route_404(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.server_port)
        conn.request("GET", "/nope")
        assert conn.getresponse().status == 404
        conn.close()

    def test_invalid_body_400_not_retried(self, server, client):
        conn = http.client.HTTPConnection("127.0.0.1", server.server_port)
        conn.request("POST", "/sweep", body="{not json")
        resp = conn.getresponse()
        assert resp.status == 400
        assert json.loads(resp.read())["code"] == "bad-request"
        conn.close()
        with pytest.raises(ServiceError) as excinfo:
            client.run([dict(scenario(), turbo=True)])
        assert excinfo.value.code == "bad-request"
        assert not client.backoff_log  # validation errors never retry

    def test_draining_server_answers_503(self, server, client):
        server.draining = True
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.server_port)
            conn.request(
                "POST", "/sweep",
                body=json.dumps({"scenarios": [scenario()]}),
            )
            resp = conn.getresponse()
            assert resp.status == 503
            assert json.loads(resp.read())["code"] == "shutdown"
            conn.close()
        finally:
            server.draining = False

    def test_stats_shape(self, server, client):
        client.run([scenario(seeds=(11,))])
        stats = client.stats()
        assert set(stats) == {"engine", "server", "cache"}
        assert stats["engine"]["executed"] >= 1
        assert stats["engine"]["fidelity"] == "sim"
        assert stats["server"]["draining"] is False
        assert stats["cache"]["entries"] >= 1


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        srv = serve(unix_socket=path, cache_dir=None)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        assert srv.wait_until_serving()
        try:
            client = SweepServiceClient(f"unix:{path}")
            cells, end = client.run([scenario(seeds=(11,))])
            assert end["streamed"] == 1
            assert client.stats()["server"]["requests"] == 1
        finally:
            srv.drain_and_close()
            thread.join(timeout=10)
        assert not (tmp_path / "serve.sock").exists()


class _FlakyHandler(BaseHTTPRequestHandler):
    """First attempt dies after one cell frame; the replay completes."""

    protocol_version = "HTTP/1.1"
    attempts = 0

    def log_message(self, format, *args):  # noqa: A002
        pass

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length", "0"))
        self.rfile.read(length)
        type(self).attempts += 1
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        self.wfile.write(encode_frame({"frame": "cell", "index": 0}))
        if type(self).attempts == 1:
            return  # EOF with no terminal frame: mid-stream death
        self.wfile.write(encode_frame({"frame": "cell", "index": 1}))
        self.wfile.write(encode_frame(end_frame(
            cells=2, streamed=2, from_cache=0, sources={"sim": 2},
        )))


class TestClientRetrySemantics:
    def test_mid_stream_eof_retries_and_dedups_by_index(self, tmp_path):
        _FlakyHandler.attempts = 0
        srv = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = SweepServiceClient(
                f"http://127.0.0.1:{srv.server_port}",
                retries=2, backoff_base=0.01, backoff_cap=0.02,
            )
            frames = list(client.stream([scenario(seeds=(11,))]))
            assert _FlakyHandler.attempts == 2
            assert [f["frame"] for f in frames] == ["cell", "cell", "end"]
            # Index 0 was streamed on both attempts but surfaces once.
            assert [f["index"] for f in frames[:2]] == [0, 1]
            assert len(client.backoff_log) == 1
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=10)

    def test_backoff_is_deterministic_for_a_seed(self):
        # Same seed, same jitter stream: two clients with the same policy
        # reproduce their own retry timing exactly.
        a = SweepServiceClient("http://localhost:1", jitter_seed=7)
        b = SweepServiceClient("http://localhost:1", jitter_seed=7)
        assert [a._rng.uniform(0, 1) for _ in range(5)] == [
            b._rng.uniform(0, 1) for _ in range(5)
        ]

    def test_connection_refused_exhausts_retries(self, tmp_path):
        # Bind-then-close guarantees the port is unoccupied.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = SweepServiceClient(
            f"http://127.0.0.1:{port}",
            retries=1, backoff_base=0.01, backoff_cap=0.02, timeout=1,
        )
        with pytest.raises(ServiceError, match="retries exhausted"):
            list(client.stream([scenario(seeds=(11,))]))
        assert len(client.backoff_log) == 1


class TestShutdownLog:
    def test_drain_surfaces_wedged_dispatcher_warning(self, tmp_path):
        srv = serve(port=0, cache_dir=None)
        release = threading.Event()
        wedged = threading.Thread(target=release.wait, name="wedged-dispatcher")
        wedged.start()
        engine = srv.session.engine
        engine._dispatcher = wedged
        engine.dispatcher_join_seconds = 0.05
        try:
            lines = srv.drain_and_close(call_shutdown=False)
        finally:
            release.set()
            wedged.join()
        assert any("failed to join" in line for line in lines)
        assert lines[0] == "drained in-flight streams"
        assert lines[-1] == "engine closed"

    def test_clean_drain_reports_no_warnings(self, tmp_path):
        srv = serve(port=0, cache_dir=None)
        lines = srv.drain_and_close(call_shutdown=False)
        assert lines == ["drained in-flight streams", "engine closed"]
