"""Tests for the Cilk-D baseline."""

import pytest

from repro.machine.topology import small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.0e9


def imbalanced_program(batches=2, tail=0.3):
    """One long task + several short ones per batch: a big idle tail."""
    out = []
    for i in range(batches):
        specs = [TaskSpec("small", cpu_cycles=0.01 * REF) for _ in range(3)]
        specs.append(TaskSpec("big", cpu_cycles=tail * REF))
        out.append(flat_batch(i, specs))
    return out


class TestCilkD:
    def test_saves_energy_vs_cilk_on_idle_tails(self):
        machine = small_test_machine(num_cores=4)
        program = imbalanced_program()
        cilk = simulate(program, CilkScheduler(), machine, seed=1)
        cilk_d = simulate(program, CilkDScheduler(idle_grace_s=0.005), machine, seed=1)
        assert cilk_d.total_joules < cilk.total_joules
        # And barely slower.
        assert cilk_d.total_time <= cilk.total_time * 1.05

    def test_idle_cores_reach_slowest_level(self):
        machine = small_test_machine(num_cores=4)
        result = simulate(
            imbalanced_program(), CilkDScheduler(idle_grace_s=0.005), machine, seed=1
        )
        by_level = result.meter.seconds_by_level()
        slowest = machine.scale.slowest_index
        assert by_level.get(slowest, 0.0) > 0.0
        assert result.policy_stats["dvfs_drops"] > 0

    def test_cores_raise_before_running_new_work(self):
        machine = small_test_machine(num_cores=4)
        result = simulate(
            imbalanced_program(batches=3),
            CilkDScheduler(idle_grace_s=0.005),
            machine,
            seed=1,
        )
        # Every executed task ran at the fastest level.
        assert all(t.executed_level == 0 for t in result.tasks)
        assert result.policy_stats.get("dvfs_raises", 0) > 0

    def test_grace_zero_drops_immediately(self):
        machine = small_test_machine(num_cores=4)
        eager = simulate(
            imbalanced_program(), CilkDScheduler(idle_grace_s=0.0), machine, seed=1
        )
        lazy = simulate(
            imbalanced_program(), CilkDScheduler(idle_grace_s=0.05), machine, seed=1
        )
        assert eager.total_joules < lazy.total_joules

    def test_huge_grace_behaves_like_cilk(self):
        machine = small_test_machine(num_cores=4)
        program = imbalanced_program()
        cilk = simulate(program, CilkScheduler(), machine, seed=1)
        never = simulate(
            program, CilkDScheduler(idle_grace_s=10.0), machine, seed=1
        )
        assert never.total_joules == pytest.approx(cilk.total_joules, rel=1e-6)

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            CilkDScheduler(idle_grace_s=-1.0)

    def test_all_tasks_complete(self):
        machine = small_test_machine(num_cores=4)
        program = imbalanced_program(batches=4)
        result = simulate(program, CilkDScheduler(idle_grace_s=0.002), machine, seed=2)
        assert result.tasks_executed == sum(len(b) for b in program)
