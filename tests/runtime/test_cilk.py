"""Tests for the Cilk baseline policy."""

import pytest

from repro.machine.topology import small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.0e9


def program_one_batch(*seconds):
    return [flat_batch(0, [TaskSpec("w", cpu_cycles=s * REF) for s in seconds])]


class TestCilk:
    def test_all_cores_stay_at_f0(self):
        machine = small_test_machine(num_cores=2)
        result = simulate(program_one_batch(0.2, 0.01), CilkScheduler(), machine)
        # Only level 0 ever accumulates time.
        assert set(result.meter.seconds_by_level()) == {0}
        assert result.trace.transitions == []

    def test_idle_core_spins_at_full_power(self):
        machine = small_test_machine(num_cores=2)
        result = simulate(program_one_batch(0.2, 0.01), CilkScheduler(), machine)
        # Core finishing the small task spins until the big one ends.
        spin = result.spin_joules
        busy_power = machine.power.busy_power(machine.scale.fastest)
        assert spin == pytest.approx(busy_power * (0.2 - 0.01), rel=0.1)

    def test_single_core_placement(self):
        machine = small_test_machine(num_cores=2)
        program = program_one_batch(*([0.01] * 8))
        rr = simulate(program, CilkScheduler("round_robin"), machine, seed=1)
        sc = simulate(program, CilkScheduler("single_core"), machine, seed=1)
        # With single-core placement, every task core 1 runs was stolen.
        assert sc.policy_stats["tasks_stolen"] >= rr.policy_stats["tasks_stolen"]
        assert sc.tasks_executed == rr.tasks_executed == 8

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            CilkScheduler("hashed")

    def test_fixed_core_levels_respected(self):
        machine = small_test_machine(num_cores=2)
        result = simulate(
            program_one_batch(0.1, 0.1),
            CilkScheduler(core_levels=[0, 1]),
            machine,
        )
        by_level = result.meter.seconds_by_level()
        assert by_level[0] > 0 and by_level[1] > 0

    def test_wrong_levels_length_rejected(self):
        machine = small_test_machine(num_cores=2)
        with pytest.raises(ValueError):
            simulate(program_one_batch(0.1), CilkScheduler(core_levels=[0]), machine)

    def test_stats_accounting(self):
        machine = small_test_machine(num_cores=2)
        policy = CilkScheduler()
        result = simulate(program_one_batch(*([0.02] * 10)), policy, machine, seed=3)
        stats = result.policy_stats
        assert stats["tasks_executed"] == 10
        assert stats["local_pops"] + stats["tasks_stolen"] == 10
