"""k-tuple search over the CC table — Algorithm 1 of the paper.

The frequency adjuster must pick, for each task class ``TC_i``, a frequency
level ``a_i`` such that:

1. **capacity** — the selected core counts fit the machine:
   ``sum_i CC[a_i][i] <= m``;
2. **lowest-first** — the search explores low frequencies before high ones
   (energy priority), i.e. ``j`` descends from ``r-1``;
3. **monotonicity** — ``a_i <= a_j`` for ``i < j``: heavier classes (lower
   ``i``; columns are sorted heaviest-first) never run on slower cores than
   lighter ones.

:func:`search_ktuple` is a faithful transcription of the paper's
backtracking Algorithm 1, including its greedy first-feasible-solution
behaviour and ``O(k * r^2)`` worst case. :func:`exhaustive_search`
enumerates every monotone tuple and returns the one minimising a power
estimate — the "more optimal but more expensive" alternative the paper
mentions and we use for the ablation benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.cc_table import CCTable
from repro.errors import SearchError
from repro.machine.power import PowerModel


@dataclass(frozen=True)
class KTupleSolution:
    """A feasible assignment of task classes to frequency levels.

    ``assignment[i]`` is the level index ``a_i`` for class ``i`` (classes in
    CC-table column order, heaviest first). ``core_demand[i]`` is the
    (real-valued) ``CC[a_i][i]`` core count the class needs at that level.
    """

    assignment: tuple[int, ...]
    core_demand: tuple[float, ...]

    @property
    def total_cores(self) -> float:
        return sum(self.core_demand)

    @property
    def levels_used(self) -> tuple[int, ...]:
        """Distinct levels in ascending (fastest-first) order."""
        return tuple(sorted(set(self.assignment)))

    def demand_by_level(self) -> dict[int, float]:
        """Aggregate core demand per frequency level."""
        demand: dict[int, float] = {}
        for level, cores in zip(self.assignment, self.core_demand):
            demand[level] = demand.get(level, 0.0) + cores
        return demand

    def is_monotone(self) -> bool:
        return all(a <= b for a, b in zip(self.assignment, self.assignment[1:]))


def search_ktuple(table: CCTable, num_cores: int) -> Optional[KTupleSolution]:
    """Algorithm 1: backtracking search for the first feasible k-tuple.

    Returns ``None`` when even the all-fastest assignment does not fit in
    ``num_cores`` (the adjuster then falls back to running everything at
    ``F_0``, i.e. plain work-stealing behaviour).
    """
    if num_cores < 1:
        raise SearchError("num_cores must be >= 1")
    r, k = table.r, table.k
    cc = table.values
    a = [0] * k
    state = {"c_n": 0.0}

    def select(i: int, j: int) -> bool:
        if cc[j, i] + state["c_n"] <= num_cores + 1e-9:
            a[i] = j
            state["c_n"] += cc[j, i]
            return True
        return False

    def search(i: int) -> bool:
        if i >= k:
            return True
        lower = a[i - 1] if i > 0 else 0  # monotonicity bound (constraint 3)
        for j in range(r - 1, lower - 1, -1):  # lowest frequency first (constraint 2)
            if select(i, j):
                if search(i + 1):
                    return True
                state["c_n"] -= cc[a[i], i]
        return False

    if not search(0):
        return None
    assignment = tuple(a)
    demand = tuple(float(cc[j, i]) for i, j in enumerate(assignment))
    return KTupleSolution(assignment=assignment, core_demand=demand)


def default_power_estimate(
    table: CCTable, num_cores: Optional[int] = None
) -> Callable[[KTupleSolution], float]:
    """Cubic-in-frequency power proxy: ``P(F_j) ~ (F_j / F_0)^3``.

    With affine voltage scaling, ``V^2 f`` is between quadratic and cubic in
    ``f``; the cube is the classic first-order proxy and needs no calibrated
    power model. When ``num_cores`` is given, cores not demanded by any
    class are charged at the slowest level's power — they spin there under
    the default leftover policy, and their count differs between candidate
    tuples, so omitting them would bias the comparison toward fast tuples.
    """
    scale = table.scale

    def estimate(solution: KTupleSolution) -> float:
        total = sum(
            cores * scale.relative_speed(level) ** 3
            for level, cores in zip(solution.assignment, solution.core_demand)
        )
        if num_cores is not None:
            leftover = max(0.0, num_cores - solution.total_cores)
            total += leftover * scale.relative_speed(scale.slowest_index) ** 3
        return total

    return estimate


def power_model_estimate(
    table: CCTable, power: PowerModel, num_cores: Optional[int] = None
) -> Callable[[KTupleSolution], float]:
    """Energy estimate using a calibrated power model.

    Each class's cores run busy for the ideal iteration time ``T``; cores
    left over by the tuple spin at the slowest level (the default leftover
    policy), so with ``num_cores`` given they are charged at that power.
    The machine baseline is identical across candidates and omitted.
    """

    def estimate(solution: KTupleSolution) -> float:
        total = sum(
            power.busy_power(table.scale[level]) * cores
            for level, cores in zip(solution.assignment, solution.core_demand)
        )
        if num_cores is not None:
            leftover = max(0.0, num_cores - solution.total_cores)
            total += leftover * power.busy_power(table.scale.slowest)
        return table.ideal_time * total

    return estimate


def exhaustive_search(
    table: CCTable,
    num_cores: int,
    *,
    estimate: Optional[Callable[[KTupleSolution], float]] = None,
) -> Optional[KTupleSolution]:
    """Enumerate all monotone k-tuples; return the feasible minimum-power one.

    Complexity is ``C(k + r - 1, r - 1)`` candidates — fine for the small
    tables of real machines, and the yardstick the ablation benchmark
    compares Algorithm 1 against.
    """
    if num_cores < 1:
        raise SearchError("num_cores must be >= 1")
    if estimate is None:
        estimate = default_power_estimate(table, num_cores)
    r, k = table.r, table.k
    cc = table.values

    best: Optional[KTupleSolution] = None
    best_score = float("inf")
    # Monotone non-decreasing assignments == combinations with repetition.
    for combo in itertools.combinations_with_replacement(range(r), k):
        demand = [float(cc[j, i]) for i, j in enumerate(combo)]
        if sum(demand) > num_cores + 1e-9:
            continue
        candidate = KTupleSolution(assignment=combo, core_demand=tuple(demand))
        score = estimate(candidate)
        # Strictly better always wins; on an *exact* score tie the later
        # (lexicographically larger, i.e. slower) tuple wins — when two
        # assignments cost the same energy, running slower is the
        # energy-priority choice (more thermal/voltage headroom, and the
        # estimate's tie means the extra time is already paid for).
        if score < best_score - 1e-15 or (best is not None and score == best_score):
            best = candidate
            best_score = score
    return best
