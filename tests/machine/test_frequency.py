"""Tests for frequency scales."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.frequency import (
    GHZ,
    FrequencyScale,
    opteron_8380_scale,
    uniform_scale,
)


class TestFrequencyScaleConstruction:
    def test_descending_levels_accepted(self):
        scale = FrequencyScale((2.0e9, 1.0e9))
        assert scale.r == 2
        assert scale.fastest == 2.0e9
        assert scale.slowest == 1.0e9

    def test_single_level_allowed(self):
        assert FrequencyScale((1.0e9,)).r == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyScale(())

    def test_ascending_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyScale((1.0e9, 2.0e9))

    def test_equal_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyScale((1.0e9, 1.0e9))

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyScale((1.0e9, 0.0))

    def test_iteration_and_indexing(self):
        scale = FrequencyScale((3.0e9, 2.0e9, 1.0e9))
        assert list(scale) == [3.0e9, 2.0e9, 1.0e9]
        assert scale[1] == 2.0e9
        assert len(scale) == 3


class TestFrequencyArithmetic:
    def test_slowdown_of_fastest_is_one(self):
        scale = opteron_8380_scale()
        assert scale.slowdown(0) == pytest.approx(1.0)

    def test_slowdown_matches_ratio(self):
        scale = opteron_8380_scale()
        assert scale.slowdown(3) == pytest.approx(2.5 / 0.8)

    def test_relative_speed_inverse_of_slowdown(self):
        scale = opteron_8380_scale()
        for j in range(scale.r):
            assert scale.relative_speed(j) * scale.slowdown(j) == pytest.approx(1.0)

    def test_index_of_finds_levels(self):
        scale = opteron_8380_scale()
        for j, f in enumerate(scale):
            assert scale.index_of(f) == j

    def test_index_of_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            opteron_8380_scale().index_of(3.14e9)

    def test_validate_index_bounds(self):
        scale = opteron_8380_scale()
        assert scale.validate_index(0) == 0
        assert scale.validate_index(3) == 3
        with pytest.raises(ConfigurationError):
            scale.validate_index(4)
        with pytest.raises(ConfigurationError):
            scale.validate_index(-1)


class TestPresets:
    def test_opteron_levels(self):
        scale = opteron_8380_scale()
        assert [f / GHZ for f in scale] == pytest.approx([2.5, 1.8, 1.3, 0.8])

    def test_uniform_scale_geometric(self):
        scale = uniform_scale(2.0, 3, ratio=0.5)
        assert [f / GHZ for f in scale] == pytest.approx([2.0, 1.0, 0.5])

    def test_uniform_scale_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_scale(2.0, 0)
        with pytest.raises(ConfigurationError):
            uniform_scale(2.0, 2, ratio=1.5)
