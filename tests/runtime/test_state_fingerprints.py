"""Pinned state fingerprints for the fast-forward detection inputs.

``state_fingerprint()`` decides whether the engine may arithmetically
replay a batch, so *any* accidental change to what it covers silently
changes which cells fast-forward. These pins freeze the fingerprints of
deterministic reference states (the parity tests in
``tests/sim/test_fast_forward.py`` prove soundness; these prove
stability), and the mutation tests prove the properties the engine relies
on: residual pooled work and RNG stream position must break equality.

Policy fingerprints embed raw ``\\x1f`` separators, so the pins here are
SHA-256 digests *of* the fingerprint strings, not the strings themselves.
"""

import hashlib

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.topology import dyadic_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.pools import PoolGrid
from repro.runtime.task import TaskFactory, TaskSpec
from repro.runtime.wats import WATSScheduler
from repro.sim.engine import simulate
from repro.sim.rng import RngStreams
from repro.workloads.periodic import periodic_program

#: Post-run fingerprints (sha256 of the string) of every shipped policy
#: after 5 periodic batches on the dyadic test machine, seed 11.
POLICY_PINS = {
    "cilk": "fcd5ccade14545a6e61b1e63435728602d07385a10d8bdb17d81086ae91c8809",
    "cilk-d": "d5766b3380b9cbc912d7cd566dbc2c76bae18a45efa4750990cb811c8b6522a7",
    "wats": "5f5c54f715b154e169b9da136bbfbfe92e4f112692561f89d185887b3210a608",
    "eewa": "b189fde7f5bb4f3fbbbff617654d9338c6e742ec60a43400c0ff1591f431ae82",
}

GRID_EMPTY_PIN = "54f4e098488c00e31f101cef792bffd5c13da249800871eae7c121dacd20b1a2"
GRID_LOADED_PIN = "a0250541fd01ee3733218f7324a756d0513082e66dc26a73cc8fadf23b5cfc39"
RNG_FRESH_PIN = "4fc82b26aecb47d2868c4efbe3581732a3e7cbcc6c2efb32062c08170a05eeb8"
RNG_DRAWN_PIN = "aaa3e7406318074d01acca92aa4e7acc468959ae86547a069612266ce7ce3332"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def make_policy(name):
    if name == "cilk":
        return CilkScheduler()
    if name == "cilk-d":
        return CilkDScheduler()
    if name == "wats":
        return WATSScheduler([0, 0, 0, 0, 2, 2, 2, 2])
    return EEWAScheduler(
        EEWAConfig(
            overhead_model=OverheadModel(
                base_seconds=2.0**-11, per_cell_seconds=2.0**-17
            )
        )
    )


def run_policy(name):
    policy = make_policy(name)
    simulate(
        periodic_program(5, 4, 8), policy,
        dyadic_test_machine(num_cores=8), seed=11,
    )
    return policy


class TestPolicyPins:
    def test_fresh_policies_opt_out(self):
        # Before a machine is attached there is no state to replay from.
        for name in POLICY_PINS:
            assert make_policy(name).state_fingerprint() is None

    def test_post_run_fingerprints_pinned(self):
        got = {
            name: _sha(run_policy(name).state_fingerprint())
            for name in POLICY_PINS
        }
        assert got == POLICY_PINS


class TestPoolGridPins:
    def test_empty_grid_pinned(self):
        assert PoolGrid(2, 2).state_fingerprint() == GRID_EMPTY_PIN

    def test_loaded_grid_pinned(self):
        grid = PoolGrid(2, 2)
        factory = TaskFactory()
        grid.push(0, 1, factory.make(TaskSpec("heavy", cpu_cycles=1024.0), 0))
        grid.push(1, 0, factory.make(TaskSpec("light", cpu_cycles=512.0), 0))
        assert grid.state_fingerprint() == GRID_LOADED_PIN

    def test_residual_task_breaks_fingerprint(self):
        # The property the fast-forward detector relies on: a batch that
        # left work queued can never fingerprint-match a clean boundary.
        grid = PoolGrid(2, 2)
        before = grid.state_fingerprint()
        task = TaskFactory().make(TaskSpec("heavy", cpu_cycles=1024.0), 0)
        grid.push(0, 0, task)
        assert grid.state_fingerprint() != before
        grid.pop_local(0, 0)
        assert grid.state_fingerprint() == before


class TestRngPins:
    def test_fresh_streams_pinned(self):
        assert RngStreams(11).state_fingerprint() == RNG_FRESH_PIN

    def test_draw_breaks_fingerprint(self):
        rng = RngStreams(11)
        rng.choice("steal", [1, 2, 3])
        assert rng.state_fingerprint() == RNG_DRAWN_PIN
        assert RNG_DRAWN_PIN != RNG_FRESH_PIN

    def test_equal_positions_equal_fingerprints(self):
        a, b = RngStreams(11), RngStreams(11)
        a.choice("steal", [1, 2, 3])
        b.choice("steal", [1, 2, 3])
        assert a.state_fingerprint() == b.state_fingerprint()


class TestProfilerFingerprintCollisions:
    @staticmethod
    def _profiler(classes):
        from repro.core.profiler import OnlineProfiler, TaskClassStats
        from repro.machine.frequency import opteron_8380_scale

        profiler = OnlineProfiler(scale=opteron_8380_scale())
        for name, count in classes:
            profiler._classes[name] = TaskClassStats(function=name, count=count)
        profiler._tasks_seen = 1
        return profiler

    def test_class_name_field_is_length_prefixed(self):
        # Without the length prefix these two states serialise to the same
        # string: the classes {"a", "b"} joined by "\x1f" vs one class
        # whose *name* embeds the join byte and a forged "a" record
        # ("a:1:0.0:0:0:0\x1fb" + ":1:0.0:0:0:0"). A collision here would
        # let fast-forward replay across genuinely different profiler
        # states.
        split = self._profiler([("a", 1), ("b", 1)])
        forged = self._profiler([("a:1:0.0:0:0:0\x1fb", 1)])
        assert split.state_fingerprint() != forged.state_fingerprint()

    def test_colon_in_name_cannot_shift_fields(self):
        # "a:1" with count 2 vs "a" with count 1 must stay distinct even
        # though the un-prefixed renderings both start with "a:1:".
        assert (
            self._profiler([("a:1", 2)]).state_fingerprint()
            != self._profiler([("a", 1)]).state_fingerprint()
        )


class TestMutationSensitivity:
    def test_policy_fingerprint_sees_residual_pooled_task(self):
        policy = run_policy("eewa")
        before = policy.state_fingerprint()
        task = TaskFactory().make(TaskSpec("heavy", cpu_cycles=1024.0), 0)
        policy._grid.push(0, 0, task)
        assert policy.state_fingerprint() != before

    def test_grouped_cursor_residue_changes_fingerprint(self):
        policy = run_policy("wats")
        before = policy.state_fingerprint()
        group = policy.plan.groups[0]
        policy._rr_cursor[group.index] += 1
        assert policy.state_fingerprint() != before
        # ...but a whole lap round the group is the same residue again.
        policy._rr_cursor[group.index] += len(group.core_ids) - 1
        assert policy.state_fingerprint() == before
