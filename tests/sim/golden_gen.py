"""Regenerate the golden-trace fixture (``golden_hashes.json``).

Run from the repo root::

    PYTHONPATH=src python tests/sim/golden_gen.py

The fixture pins, for every shipped policy × program × seed cell, the
result scalars and the full trace fingerprint. Any engine change that
shifts event ordering, timing, energy, or task placement fails the golden
suite loudly. Regenerate (and justify in review) only when an
*intentional* behaviour change is being made.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.runner import make_policy
from repro.machine.topology import opteron_8380_machine
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate
from repro.sim.fingerprint import trace_fingerprint
from repro.workloads.benchmarks import benchmark_program

FIXTURE = pathlib.Path(__file__).parent / "golden_hashes.json"

SEEDS = (11, 23, 37)
BENCHMARKS = ("SHA-1", "BWC")
GOLDEN_BATCHES = 3
#: Fixed asymmetric vector for WATS (it cannot pick its own frequencies).
WATS_LEVELS_16 = [0] * 8 + [1] * 4 + [3] * 4

REF = 2.5e9


def spawn_program():
    """A nested-spawn program: exercises the mid-run wakeup path."""
    child = TaskSpec("leaf", cpu_cycles=0.002 * REF)
    mid = TaskSpec("mid", cpu_cycles=0.004 * REF, children=(child, child))
    roots = [
        TaskSpec("root", cpu_cycles=0.006 * REF, children=(mid, child))
        for _ in range(24)
    ]
    return [flat_batch(0, roots), flat_batch(1, roots)]


def cells():
    for benchmark in BENCHMARKS:
        for policy in ("cilk", "cilk-d", "wats", "eewa"):
            for seed in SEEDS:
                yield benchmark, policy, seed
    for policy in ("cilk", "eewa"):
        for seed in SEEDS:
            yield "spawn-tree", policy, seed


def run_cell(benchmark: str, policy: str, seed: int):
    machine = opteron_8380_machine()
    if benchmark == "spawn-tree":
        program = spawn_program()
    else:
        program = benchmark_program(benchmark, batches=GOLDEN_BATCHES, seed=seed)
    core_levels = WATS_LEVELS_16 if policy == "wats" else None
    policy_obj = make_policy(policy, core_levels=core_levels)
    result = simulate(program, policy_obj, machine, seed=seed)
    return {
        "total_time": result.total_time,
        "total_joules": result.total_joules,
        "tasks_executed": result.tasks_executed,
        "fingerprint": trace_fingerprint(result),
    }


def main() -> None:
    fixture = {
        f"{benchmark}/{policy}/seed{seed}": run_cell(benchmark, policy, seed)
        for benchmark, policy, seed in cells()
    }
    FIXTURE.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fixture)} golden cells to {FIXTURE}")


if __name__ == "__main__":
    main()
