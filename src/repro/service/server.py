"""``repro serve`` — the sweep engine behind an HTTP/unix-socket front-end.

One :class:`~repro.scenario.session.Session` (and therefore one
:class:`~repro.experiments.sweep.SweepEngine`) is shared by every client:
identical cells submitted by different clients coalesce onto one in-flight
simulation, and every result lands in the shared content-addressed cache.
The server adds the four service-level behaviours the engine cannot see
from inside:

* **admission control** — a request whose cells would push the queue past
  the backpressure bound is refused up front with HTTP 429 and a
  ``Retry-After`` estimate derived from the engine's observed per-cell
  cost, instead of blocking the client inside ``submit``;
* **per-request deadlines** — ``deadline_s`` bounds the whole stream;
  expiry cancels the request's still-queued tickets (coalesced tickets
  cancel independently, so other clients' cells are untouched) and
  terminates the stream with a ``deadline`` error frame;
* **disconnect cleanup** — a client that drops mid-stream gets its queued
  tickets cancelled the moment a frame write fails; nothing it shared
  with other clients is disturbed;
* **graceful drain** — :meth:`SweepServer.drain_and_close` stops
  accepting, lets every in-flight stream finish, then closes the engine,
  surfacing any ``RuntimeWarning`` (e.g. a wedged dispatcher) in the
  shutdown log instead of swallowing it.

The wire format lives in :mod:`repro.service.protocol`; the matching
client in :mod:`repro.service.client`.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import socketserver
import sys
import threading
import time
import warnings
from concurrent.futures import CancelledError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional, Sequence

from repro.errors import ScenarioError
from repro.scenario.registry import POLICIES
from repro.scenario.session import Session
from repro.scenario.spec import PolicySpec, ScenarioSpec
from repro.service.protocol import (
    SweepRequest,
    cell_frame,
    encode_frame,
    end_frame,
    error_frame,
    parse_sweep_request,
)

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8377


def resolve_scenario(session: Session, scenario: ScenarioSpec) -> ScenarioSpec:
    """Fill fixed core levels server-side (the ``repro run-spec`` rule).

    A policy that *needs* core levels but carries none runs on EEWA's
    modal configuration for the scenario's workload — derived through the
    shared engine, so the derivation cell is deduplicated and cached
    across clients like any other cell.
    """
    entry = POLICIES.get(scenario.policy.name)
    if not entry.needs_core_levels or scenario.policy.core_levels is not None:
        return scenario
    levels = tuple(session.modal_eewa_levels(scenario))
    return scenario.with_policy(
        PolicySpec(scenario.policy.name, core_levels=levels)
    )


def stream_request(
    session: Session,
    request: SweepRequest,
    write: Callable[[bytes], None],
) -> dict[str, Any]:
    """Submit one request's cells and stream frames through ``write``.

    The streaming core of the service, factored out of the HTTP handler
    so its contract is testable without sockets. ``write`` receives one
    encoded frame at a time; if it raises ``OSError`` (client gone), the
    request's still-queued tickets are cancelled and the summary records
    the disconnect. Returns a summary dict (``ended`` is one of ``"end"``,
    ``"deadline"``, ``"engine"``, ``"disconnect"``).
    """
    engine = session.engine
    scenarios = [resolve_scenario(session, s) for s in request.scenarios]
    resolved = SweepRequest(
        scenarios=tuple(scenarios),
        fidelity=request.fidelity,
        priority=request.priority,
        deadline_s=request.deadline_s,
    )
    pairs = resolved.cells()
    tickets = engine.submit_many(
        [cell for _, cell in pairs],
        priority=request.priority,
        fidelity=request.fidelity,
    )
    order = {id(t): i for i, t in enumerate(tickets)}
    streamed = 0
    from_cache = 0
    sources: dict[str, int] = {}
    summary = {
        "cells": len(tickets),
        "streamed": 0,
        "from_cache": 0,
        "sources": sources,
        "ended": "end",
    }

    def _cancel_rest() -> int:
        return sum(1 for t in tickets if t.cancel())

    try:
        for ticket in engine.as_completed(tickets, timeout=request.deadline_s):
            if ticket.future.cancelled():
                continue
            try:
                outcome = ticket.result(timeout=0)
            except CancelledError:
                continue
            except Exception as exc:  # engine-side failure for this cell
                _cancel_rest()
                summary["ended"] = "engine"
                write(encode_frame(error_frame(
                    "engine", f"{type(exc).__name__}: {exc}"
                )))
                return summary
            index = order[id(ticket)]
            write(encode_frame(
                cell_frame(index, pairs[index][0], outcome)
            ))
            streamed += 1
            from_cache += int(outcome.from_cache)
            sources[outcome.source] = sources.get(outcome.source, 0) + 1
            summary["streamed"] = streamed
            summary["from_cache"] = from_cache
    except TimeoutError:
        cancelled = _cancel_rest()
        summary["ended"] = "deadline"
        with contextlib.suppress(OSError):
            write(encode_frame(error_frame(
                "deadline",
                f"deadline of {request.deadline_s} s expired with "
                f"{len(tickets) - streamed} cells unresolved "
                f"({cancelled} cancelled)",
            )))
        return summary
    except OSError:
        # The client went away mid-stream: withdraw its queued cells and
        # leave everything other clients share with it untouched.
        _cancel_rest()
        summary["ended"] = "disconnect"
        return summary
    write(encode_frame(end_frame(
        cells=len(tickets), streamed=streamed, from_cache=from_cache,
        sources=sources,
    )))
    return summary


class _Handler(BaseHTTPRequestHandler):
    """Routes: ``POST /sweep`` (stream), ``GET /stats``, ``GET /healthz``."""

    protocol_version = "HTTP/1.1"
    server: "SweepServer"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        self.server.log(f"{self.address_string()} {format % args}")

    def _send_json(
        self, status: int, payload: dict[str, Any], *, headers: Sequence[tuple[str, str]] = ()
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- GET -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
            return
        if self.path == "/stats":
            self._send_json(200, self.server.stats_payload())
            return
        self._send_json(404, error_frame("bad-request", f"no route {self.path}"))

    # -- POST ------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/sweep":
            self._send_json(404, error_frame("bad-request", f"no route {self.path}"))
            return
        if self.server.draining:
            self._send_json(503, error_frame("shutdown", "server is draining"))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            request = parse_sweep_request(json.loads(raw.decode("utf-8")))
        except ScenarioError as exc:
            self._send_json(400, error_frame("bad-request", str(exc)))
            return
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, error_frame("bad-request", f"invalid JSON body: {exc}"))
            return

        n_cells = sum(len(s.seeds) for s in request.scenarios)
        retry_after = self.server.admission_delay(n_cells)
        if retry_after is not None:
            self._send_json(
                429,
                error_frame(
                    "backpressure",
                    f"queue full ({self.server.session.engine.queue_depth} "
                    f"pending); retry after {retry_after} s",
                ),
                headers=[("Retry-After", str(retry_after))],
            )
            return

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        def _write(frame: bytes) -> None:
            self.wfile.write(frame)
            self.wfile.flush()

        self.server.request_started()
        try:
            summary = stream_request(self.server.session, request, _write)
        finally:
            self.server.request_finished()
        self.server.log(
            f"{self.address_string()} sweep: {summary['streamed']}/"
            f"{summary['cells']} cells streamed ({summary['ended']})"
        )


class SweepServer(ThreadingHTTPServer):
    """Threading HTTP server sharing one :class:`Session` across clients.

    Handler threads are non-daemon and joined on ``server_close()``, so
    :meth:`drain_and_close` cannot close the engine under a live stream.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        session: Session,
        *,
        max_pending: Optional[int] = None,
        verbose: bool = False,
        log_file: Any = None,
    ) -> None:
        self.session = session
        #: Admission bound on queued cells; defaults to the engine's own
        #: backpressure bound so an admitted request never blocks in submit.
        self.max_pending = (
            max_pending if max_pending is not None
            else session.engine.max_pending
        )
        self.verbose = verbose
        self.log_file = log_file if log_file is not None else sys.stderr
        self.draining = False
        self.started_at = time.monotonic()
        self._active = 0
        self._requests = 0
        self._active_lock = threading.Lock()
        self._serving = threading.Event()
        super().__init__(address, _Handler)

    # -- bookkeeping -----------------------------------------------------

    def log(self, message: str) -> None:
        if self.verbose:
            print(f"[repro serve] {message}", file=self.log_file, flush=True)

    def request_started(self) -> None:
        with self._active_lock:
            self._active += 1
            self._requests += 1

    def request_finished(self) -> None:
        with self._active_lock:
            self._active -= 1

    @property
    def active_streams(self) -> int:
        with self._active_lock:
            return self._active

    def admission_delay(self, new_cells: int) -> Optional[int]:
        """``None`` to admit, else the ``Retry-After`` seconds for a 429.

        The estimate is how long the engine needs to drain the current
        backlog at its observed per-cell cost (bounded to [1, 60] s).
        """
        engine = self.session.engine
        depth = engine.queue_depth
        if depth + new_cells <= self.max_pending:
            return None
        per_cell = engine.ema_cell_seconds or 0.1
        return max(1, min(60, int(depth * per_cell) + 1))

    def stats_payload(self) -> dict[str, Any]:
        """The ``GET /stats`` body: engine + cache + server observability."""
        engine = self.session.engine
        stats = engine.stats
        payload: dict[str, Any] = {
            "engine": {
                "cells": stats.cells,
                "executed": stats.executed,
                "cache_hits": stats.cache_hits,
                "memo_hits": stats.memo_hits,
                "deduplicated": stats.deduplicated,
                "cancelled": stats.cancelled,
                "chunks": stats.chunks,
                "model_cells": stats.model_cells,
                "queue_depth": engine.queue_depth,
                "ema_cell_seconds": engine.ema_cell_seconds,
                "fidelity": engine.fidelity,
            },
            "server": {
                "active_streams": self.active_streams,
                "requests": self._requests,
                "uptime_s": time.monotonic() - self.started_at,
                "max_pending": self.max_pending,
                "draining": self.draining,
            },
        }
        if engine.cache is not None:
            from repro.experiments.cachectl import cache_stats
            import dataclasses

            payload["cache"] = dataclasses.asdict(
                cache_stats(engine.cache.root)
            )
        else:
            payload["cache"] = None
        return payload

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    def wait_until_serving(self, timeout: float = 5.0) -> bool:
        """Block until ``serve_forever`` is accepting (for test harnesses)."""
        return self._serving.wait(timeout)

    def drain_and_close(self, *, call_shutdown: bool = True) -> list[str]:
        """Graceful shutdown: refuse new work, drain streams, close engine.

        Returns the shutdown log lines (including any ``RuntimeWarning``
        the engine raised while closing, e.g. a dispatcher that failed to
        join) so callers can surface them.
        """
        self.draining = True
        if call_shutdown and self._serving.is_set():
            self.shutdown()  # stop accepting; serve_forever returns
        self.server_close()  # joins handler threads: streams drain here
        messages = ["drained in-flight streams"]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self.session.close()
        for entry in caught:
            if issubclass(entry.category, RuntimeWarning):
                messages.append(f"warning: {entry.message}")
        messages.append("engine closed")
        for message in messages:
            self.log(message)
        return messages


class UnixSweepServer(SweepServer):
    """The same service bound to a unix domain socket path."""

    address_family = socket.AF_UNIX

    def __init__(self, socket_path: str, session: Session, **kwargs: Any) -> None:
        self.socket_path = socket_path
        with contextlib.suppress(OSError):
            os.unlink(socket_path)  # stale socket from a crashed server
        super().__init__(socket_path, session, **kwargs)  # type: ignore[arg-type]

    def server_bind(self) -> None:
        # HTTPServer.server_bind assumes a (host, port) address and calls
        # getfqdn on it; a unix path needs the raw TCPServer bind.
        socketserver.TCPServer.server_bind(self)
        self.server_name = self.socket_path
        self.server_port = 0

    def finish_request(self, request: Any, client_address: Any) -> None:
        # accept() on AF_UNIX yields '' as the peer address; hand the
        # handler a (host, port)-shaped tuple so logging works unchanged.
        self.RequestHandlerClass(request, ("unix", 0), self)

    def server_close(self) -> None:
        super().server_close()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    unix_socket: Optional[str] = None,
    session: Optional[Session] = None,
    workers: Optional[int] = 0,
    cache_dir: str | os.PathLike[str] | None = None,
    fast_forward: bool = True,
    fidelity: str = "sim",
    max_pending: Optional[int] = None,
    verbose: bool = False,
) -> SweepServer:
    """Build a ready-to-run server (TCP by default, unix socket if given).

    Constructs the shared :class:`Session` unless one is passed in; the
    caller runs ``serve_forever()`` and ``drain_and_close()``. ``port=0``
    binds an ephemeral port (see ``server_port`` after construction).
    """
    if session is None:
        session = Session(
            workers=workers, cache_dir=cache_dir, fast_forward=fast_forward,
            fidelity=fidelity,
        )
    if unix_socket is not None:
        return UnixSweepServer(
            unix_socket, session, max_pending=max_pending, verbose=verbose
        )
    return SweepServer(
        (host, port), session, max_pending=max_pending, verbose=verbose
    )


__all__ = [
    "DEFAULT_PORT",
    "SweepServer",
    "UnixSweepServer",
    "resolve_scenario",
    "serve",
    "stream_request",
]
