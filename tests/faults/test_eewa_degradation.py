"""EEWA's graceful-degradation machinery under injected faults."""

import pytest

from repro.core.adjuster import AdjusterDecision
from repro.core.cgroups import uniform_plan
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.faults import FaultSpec
from repro.faults.matrix import standard_machine, standard_program
from repro.sim.engine import simulate

_SEED = 9


class TestDenialStreaks:
    def test_streak_builds_then_backs_off(self):
        policy = EEWAScheduler(
            EEWAConfig(max_dvfs_retries=2, dvfs_backoff_batches=2)
        )
        policy.on_dvfs_denied(1, 2)
        policy._update_denial_streaks()
        assert policy._denied_streak == {1: 1}
        assert not policy._dvfs_backoff
        policy.on_dvfs_denied(1, 2)
        policy._update_denial_streaks()
        assert policy._denied_streak == {}
        assert policy._dvfs_backoff == {1: 2}
        assert policy.stats.extra["dvfs_backoffs"] == 1.0

    def test_granted_boundary_resets_the_streak(self):
        policy = EEWAScheduler(
            EEWAConfig(max_dvfs_retries=3, dvfs_backoff_batches=2)
        )
        policy.on_dvfs_denied(0, 1)
        policy._update_denial_streaks()
        # Next boundary arrives with no denial for core 0: streak resets,
        # so a later denial starts over instead of compounding.
        policy._update_denial_streaks()
        assert policy._denied_streak == {}
        policy.on_dvfs_denied(0, 1)
        policy._update_denial_streaks()
        assert policy._denied_streak == {0: 1}

    def test_mask_backoff_ticks_the_window(self):
        policy = EEWAScheduler(
            EEWAConfig(max_dvfs_retries=1, dvfs_backoff_batches=2)
        )
        policy._dvfs_backoff = {1: 2}
        assert policy._mask_backoff([0, 0, 0, 0]) == [0, None, 0, 0]
        assert policy._dvfs_backoff == {1: 1}
        assert policy._mask_backoff([0, 0, 0, 0]) == [0, None, 0, 0]
        assert policy._dvfs_backoff == {}
        # Window expired: the next plan requests the core again.
        assert policy._mask_backoff([0, 0, 0, 0]) == [0, 0, 0, 0]


class TestUnderInjection:
    def test_persistent_denial_engages_backoff_and_completes(self):
        policy = EEWAScheduler(
            EEWAConfig(max_dvfs_retries=2, dvfs_backoff_batches=2)
        )
        result = simulate(
            standard_program(8),
            policy,
            standard_machine(),
            seed=_SEED,
            faults=FaultSpec(dvfs_deny_rate=1.0, dvfs_deny_penalty_s=2e-4),
        )
        assert result.tasks_executed == 80
        assert result.policy_stats.get("dvfs_denied", 0.0) > 0
        assert result.policy_stats.get("dvfs_backoffs", 0.0) >= 1.0

    def test_repeated_search_failure_freezes_to_f0(self, monkeypatch):
        # Force the planner to keep coming up empty: after
        # ``max_search_failures`` boundaries EEWA must stop paying for the
        # search and pin the rest of the run to all-F_0 work-stealing.
        machine = standard_machine()

        def no_feasible(self):
            return AdjusterDecision(
                plan=uniform_plan(machine.num_cores, level=0),
                table=None,
                solution=None,
                wallclock_seconds=0.0,
                simulated_seconds=0.0,
                fallback_reason="no feasible k-tuple",
            )

        monkeypatch.setattr(EEWAScheduler, "_decide", no_feasible)
        policy = EEWAScheduler(EEWAConfig(max_search_failures=2))
        result = simulate(standard_program(6), policy, machine, seed=_SEED)
        assert result.tasks_executed == 60
        assert policy._frozen
        assert policy._search_failures == 2
        assert result.policy_stats.get("fallback_search_failure") == 1.0
        # Frozen means exactly max_search_failures decisions were paid for.
        assert len(policy.decisions) == 2


class TestFingerprintCoverage:
    @pytest.fixture
    def ran_policy(self):
        policy = EEWAScheduler()
        simulate(standard_program(), policy, standard_machine(), seed=_SEED)
        return policy

    def test_fault_free_fingerprint_has_no_degradation_section(self, ran_policy):
        # Golden-trace stability: the ``:deg=`` suffix may only ever appear
        # under fault injection, which already disables fast-forward.
        assert ":deg=" not in ran_policy.state_fingerprint()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p._denied_streak.update({0: 1}),
            lambda p: p._dvfs_backoff.update({2: 1}),
            lambda p: p._denied_since_boundary.add(3),
            lambda p: setattr(p, "_search_failures", 1),
        ],
    )
    def test_degradation_state_changes_the_fingerprint(self, ran_policy, mutate):
        before = ran_policy.state_fingerprint()
        mutate(ran_policy)
        after = ran_policy.state_fingerprint()
        assert after != before
        assert ":deg=" in after
