"""Shared machinery for c-group-aware schedulers (EEWA and WATS).

Implements the runtime architecture of the paper's Fig. 4/5: every core owns
one task pool per c-group, tasks are pushed into the pool of the group
their class is allocated to (unknown classes go to the fastest group), and
idle cores escalate through groups in rob-the-weaker-first preference order,
stealing randomly *within* a group before moving to the next.

The concrete policies differ only in where the :class:`CGroupPlan` comes
from: EEWA recomputes it every batch via the frequency adjuster; WATS keeps
frequencies fixed and only re-derives the class allocation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cgroups import CGroupPlan
from repro.core.preference import preference_lists
from repro.runtime.policy import Action, RunTask, SchedulerPolicy, Wait
from repro.runtime.pools import PoolGrid
from repro.runtime.task import Batch, Task
from repro.sim.fingerprint import digest


class GroupedStealingPolicy(SchedulerPolicy):
    """Base policy: multi-pool placement + preference-based stealing."""

    name = "grouped"

    def __init__(self) -> None:
        super().__init__()
        self._grid: Optional[PoolGrid] = None
        self._plan: Optional[CGroupPlan] = None
        self._prefs: list[tuple[int, ...]] = []
        self._rr_cursor: dict[int, int] = {}
        self._group_max_workload: Optional[list[float]] = None
        self._ideal_time: Optional[float] = None

    # -- plan management ------------------------------------------------------

    def _install_plan(
        self,
        plan: CGroupPlan,
        *,
        class_workloads: Optional[dict[str, float]] = None,
        ideal_time: Optional[float] = None,
    ) -> None:
        """Adopt a new c-group plan; renew pools and preference lists.

        ``class_workloads`` (mean normalised workload per class) and
        ``ideal_time`` arm the *criticality guard*: a slow core skips
        stealing from a faster group whose heaviest class, run at the
        thief's speed, would blow the iteration budget — the Fig. 1(c)
        mis-schedule the paper's preference scheduler exists to avoid.
        """
        ctx = self._require_ctx()
        if self._grid is None:
            observer = getattr(ctx, "pool_observer", lambda: None)()
            core_types = (
                tuple(
                    ctx.machine.core_type_of(i)
                    for i in range(ctx.machine.num_cores)
                )
                if ctx.machine.is_heterogeneous
                else None
            )
            self._grid = PoolGrid(
                ctx.machine.num_cores,
                ctx.machine.r,
                observer=observer,
                core_types=core_types,
            )
        self._plan = plan
        self._prefs = preference_lists(plan.num_groups)
        self._rr_cursor = {g.index: 0 for g in plan.groups}
        self._group_max_workload = None
        self._ideal_time = ideal_time
        if class_workloads and ideal_time:
            per_group = [0.0] * plan.num_groups
            for name, g in plan.class_to_group.items():
                per_group[g] = max(per_group[g], class_workloads.get(name, 0.0))
            self._group_max_workload = per_group
        trace_plan = getattr(ctx, "trace_plan", None)
        if trace_plan is not None:
            trace_plan(
                plan.group_of_core, tuple(g.level for g in plan.groups)
            )

    def _steal_would_blow_budget(self, thief_rank: int, group_index: int) -> bool:
        """True when the group's heaviest class cannot fit the iteration
        budget at the thief's speed (Fig. 1(c) guard).

        ``thief_rank`` is the thief group's global operating-point index
        (== its frequency level on homogeneous machines), so the slowdown
        accounts for per-type IPC as well as frequency.
        """
        if self._group_max_workload is None or self._ideal_time is None:
            return False
        ctx = self._require_ctx()
        heaviest = self._group_max_workload[group_index]
        return heaviest * ctx.machine.scale.slowdown(thief_rank) > self._ideal_time

    def state_fingerprint(self) -> Optional[str]:
        """Digest the installed plan, steal cursors, guard state and pools.

        Round-robin cursors are digested *modulo group size*: after placing
        a whole batch they may differ by a full number of laps between
        boundaries, yet the next placement is identical — only the residue
        matters. Residual pooled tasks enter via the grid fingerprint, so a
        batch that left work queued never matches a clean boundary.
        """
        if self._plan is None or self._grid is None:
            return None
        plan = self._plan
        cursors = tuple(
            self._rr_cursor[g.index] % len(g.core_ids) for g in plan.groups
        )
        return digest(
            [
                "grouped-policy-state",
                self.name,
                tuple(plan.group_of_core),
                tuple((g.index, g.level, tuple(g.core_ids)) for g in plan.groups),
                tuple(sorted(plan.class_to_group.items())),
                cursors,
                self._group_max_workload,
                self._ideal_time,
                self._grid.state_fingerprint(),
            ]
        )

    @property
    def plan(self) -> CGroupPlan:
        if self._plan is None:
            raise RuntimeError(f"{self.name}: no c-group plan installed")
        return self._plan

    def _group_for_function(self, function: str) -> int:
        """Group holding ``function``'s class; unknown classes go fastest.

        Paper: "if there is no existing task class for γ, it will be pushed
        in the task pool of the fastest c-group" — avoids running unknown
        (possibly heavy) work on slow cores.
        """
        return self.plan.class_to_group.get(function, self.plan.fastest_group_index())

    def _place_in_group(self, task: Task, group_index: int) -> None:
        """Round-robin a task across the cores of its group."""
        assert self._grid is not None
        group = self.plan.groups[group_index]
        cursor = self._rr_cursor[group_index]
        core_id = group.core_ids[cursor % len(group.core_ids)]
        self._rr_cursor[group_index] = cursor + 1
        self._grid.push(core_id, group_index, task)

    # -- SchedulerPolicy hooks ---------------------------------------------------

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        for task in tasks:
            self._place_in_group(task, self._group_for_function(task.function))

    def on_spawn(self, core_id: int, task: Task) -> None:
        """A task spawned mid-execution lands in the spawning core's own
        pool for the class's group (Fig. 4 semantics)."""
        assert self._grid is not None
        group_index = self._group_for_function(task.function)
        self._grid.push(core_id, group_index, task)

    def next_action(self, core_id: int) -> Action:
        ctx = self._require_ctx()
        grid = self._grid
        assert grid is not None
        plan = self.plan
        own_group = plan.group_of_core[core_id]

        thief_rank = plan.groups[own_group].rank
        for group_index in self._prefs[own_group]:
            # A slower core helping out a faster group must not pick up a
            # task too heavy to finish within the iteration budget. Group
            # speed comparisons use the global operating-point rank so they
            # stay meaningful across core types.
            if (
                group_index != own_group
                and plan.groups[group_index].rank < thief_rank
                and self._steal_would_blow_budget(thief_rank, group_index)
            ):
                self.stats.extra["guarded_steals"] = (
                    self.stats.extra.get("guarded_steals", 0) + 1
                )
                continue
            # Local pool for this group first (lock-free pop).
            task = grid.pop_local(core_id, group_index)
            if task is not None:
                self.stats.local_pops += 1
                self.stats.tasks_executed += 1
                if group_index != own_group:
                    self.stats.cross_group_steals += 1
                return RunTask(task, acquire_cycles=ctx.machine.pop_cycles)
            # Then random stealing within the group.
            victims = grid.victims_with_work(group_index, exclude=core_id)
            if victims:
                victim = ctx.rng_choice(f"{self.name}.victim", victims)
                stolen = grid.steal(victim, group_index)
                if stolen is not None:
                    self.stats.tasks_stolen += 1
                    self.stats.tasks_executed += 1
                    if group_index != own_group:
                        self.stats.cross_group_steals += 1
                    return RunTask(stolen, acquire_cycles=ctx.machine.steal_cycles)
            # Group drained everywhere -> move down the preference list.

        self.stats.failed_scans += 1
        return Wait(scan_cycles=ctx.machine.failed_scan_cycles)
