"""Batch-barrier bookkeeping.

Iteration-based programs synchronise at a barrier after each batch
(Section II: "all cores need to wait for the last core to arrive at a
barrier"). The engine uses :class:`BatchBarrier` to know when every task of
the current batch — including tasks spawned mid-batch — has retired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError


@dataclass
class BatchBarrier:
    """Counts outstanding tasks of the in-flight batch."""

    batch_index: Optional[int] = None
    outstanding: int = 0
    launched: int = 0
    completed: int = 0
    start_time: float = 0.0
    _history: list[tuple[int, int, float, float]] = field(default_factory=list)

    def open(self, batch_index: int, now: float) -> None:
        if self.batch_index is not None:
            raise SimulationError(
                f"batch {self.batch_index} still open; cannot open {batch_index}"
            )
        if self.outstanding != 0:
            raise SimulationError("outstanding tasks across batch boundary")
        self.batch_index = batch_index
        self.start_time = now
        self.launched = 0
        self.completed = 0

    def add_task(self) -> None:
        if self.batch_index is None:
            raise SimulationError("no batch open")
        self.outstanding += 1
        self.launched += 1

    def task_done(self) -> bool:
        """Record one retirement; True when the batch just drained."""
        if self.batch_index is None:
            raise SimulationError("no batch open")
        if self.outstanding <= 0:
            raise SimulationError("task_done with no outstanding tasks")
        self.outstanding -= 1
        self.completed += 1
        return self.outstanding == 0

    def close(self, now: float) -> float:
        """Close the drained batch; returns its wall duration."""
        if self.batch_index is None:
            raise SimulationError("no batch open")
        if self.outstanding != 0:
            raise SimulationError(
                f"closing batch {self.batch_index} with {self.outstanding} tasks in flight"
            )
        duration = now - self.start_time
        self._history.append((self.batch_index, self.completed, self.start_time, duration))
        self.batch_index = None
        return duration

    @property
    def history(self) -> list[tuple[int, int, float, float]]:
        """(batch_index, tasks_completed, start_time, duration) per batch."""
        return list(self._history)
