"""Command-line interface.

``python -m repro <command>``:

* ``list`` — available benchmarks, policies and exhibits;
* ``run`` — one benchmark under one policy, with timing/energy and traces;
* ``compare`` — one benchmark under all policies, normalised to Cilk;
* ``figure`` — regenerate one paper exhibit (fig1/fig6/fig7/fig8/fig9/table3);
* ``bench`` — parallel cached sweep over (benchmark × policy × seed) cells
  (see :mod:`repro.experiments.parallel`);
* ``calibrate`` — re-measure the real kernels behind the workload costs;
* ``check`` — determinism lint, invariant model checking, race detection
  (see :mod:`repro.checks`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import (
    fig1_rows,
    format_table,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table3,
)
from repro.experiments.runner import make_policy
from repro.machine.topology import opteron_8380_machine
from repro.sim.engine import simulate
from repro.workloads.benchmarks import BENCHMARK_NAMES, benchmark_program

POLICY_NAMES = ("cilk", "cilk-d", "eewa")
EXHIBITS = ("fig1", "fig6", "fig7", "fig8", "fig9", "table3")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EEWA (IPDPS 2014) reproduction: simulate, compare, regenerate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, policies and exhibits")

    run = sub.add_parser("run", help="run one benchmark under one policy")
    run.add_argument("benchmark", choices=BENCHMARK_NAMES + ("STREAM-like", "DMC-phased"))
    run.add_argument("policy", choices=POLICY_NAMES)
    run.add_argument("--batches", type=int, default=None)
    run.add_argument("--cores", type=int, default=16)
    run.add_argument("--seed", type=int, default=11)
    run.add_argument("--trace", action="store_true", help="print per-batch traces")
    run.add_argument(
        "--per-socket-dvfs", action="store_true",
        help="quad-core shared frequency planes (the physical Opteron 8380)",
    )
    run.add_argument("--json", metavar="PATH", help="write a JSON result summary")
    run.add_argument("--csv", metavar="PATH", help="write per-batch metrics as CSV")
    run.add_argument(
        "--thermal", action="store_true",
        help="record power traces and print a thermal-headroom report",
    )

    cmp_ = sub.add_parser("compare", help="one benchmark under all policies")
    cmp_.add_argument("benchmark", choices=BENCHMARK_NAMES + ("STREAM-like",))
    cmp_.add_argument("--batches", type=int, default=None)
    cmp_.add_argument("--cores", type=int, default=16)
    cmp_.add_argument("--seed", type=int, default=11)

    fig = sub.add_parser("figure", help="regenerate one paper exhibit")
    fig.add_argument("exhibit", choices=EXHIBITS)
    fig.add_argument("--seed", type=int, default=11)

    spec = sub.add_parser("run-spec", help="run a JSON workload spec file")
    spec.add_argument("spec_file", help="path to a workload spec JSON")
    spec.add_argument("policy", choices=POLICY_NAMES)
    spec.add_argument("--batches", type=int, default=None)
    spec.add_argument("--cores", type=int, default=16)
    spec.add_argument("--seed", type=int, default=11)
    spec.add_argument("--diagnose", action="store_true",
                      help="print the static workload diagnostics first")

    bench = sub.add_parser(
        "bench",
        help="parallel cached sweep over (benchmark × policy × seed) cells",
    )
    bench.add_argument(
        "--benchmarks", nargs="+", default=list(BENCHMARK_NAMES),
        choices=BENCHMARK_NAMES + ("STREAM-like", "DMC-phased"),
        metavar="NAME",
    )
    bench.add_argument(
        "--policies", nargs="+", default=list(POLICY_NAMES),
        choices=POLICY_NAMES, metavar="POLICY",
    )
    bench.add_argument("--seeds", nargs="+", type=int, default=[11, 23, 37])
    bench.add_argument("--batches", type=int, default=None)
    bench.add_argument("--cores", type=int, default=16)
    bench.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: cpu count; 0/1 runs in-process)",
    )
    bench.add_argument(
        "--cache-dir", default=".repro-cache",
        help="result cache root (default: .repro-cache)",
    )
    bench.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    bench.add_argument("--json", metavar="PATH", help="write sweep results as JSON")

    cal = sub.add_parser("calibrate", help="re-measure real kernel costs")
    cal.add_argument("--repeats", type=int, default=3)

    # Registered only so ``repro --help`` lists it; ``main`` hands the whole
    # argv tail to the checks runner before this parser ever sees it.
    sub.add_parser(
        "check",
        add_help=False,
        help="determinism lint, invariant model checking, race detection",
    )

    return parser


def _cmd_list() -> int:
    print("benchmarks (paper Table II):", ", ".join(BENCHMARK_NAMES))
    print("extra workloads: STREAM-like (memory-bound), DMC-phased (varying)")
    print("policies:", ", ".join(POLICY_NAMES), "(+ wats via the API)")
    print("exhibits:", ", ".join(EXHIBITS))
    print("checks: repro check [--strict] (lint EEWA0xx, invariants EEWA1xx, races EEWA2xx)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = opteron_8380_machine(
        num_cores=args.cores, per_socket_dvfs=args.per_socket_dvfs
    )
    program = benchmark_program(args.benchmark, batches=args.batches, seed=args.seed)
    policy = make_policy(args.policy)
    result = simulate(
        program, policy, machine, seed=args.seed,
        record_power_series=args.thermal,
    )
    print(
        f"{args.benchmark} / {args.policy} on {args.cores} cores: "
        f"{result.total_time*1e3:.1f} ms, {result.total_joules:.2f} J "
        f"(avg {result.average_power:.0f} W), {result.tasks_executed} tasks"
    )
    print(
        f"  energy breakdown: running {result.running_joules:.1f} J, "
        f"spinning {result.spin_joules:.1f} J, "
        f"baseline {result.baseline_joules:.1f} J"
    )
    if args.trace:
        print("  per-batch (duration ms | cores per level):")
        for bt in result.trace.batches:
            print(
                f"    batch {bt.batch_index:3d}: {bt.duration*1e3:8.2f} | "
                f"{bt.level_histogram}"
            )
    if args.thermal:
        from repro.analysis.thermal import thermal_report

        report = thermal_report(result)
        print(
            f"  thermal: peak {report.peak_c:.1f} C "
            f"(throttle at {report.params.throttle_c:.0f} C, "
            f"{report.total_throttle_seconds*1e3:.1f} ms above)"
        )
    if args.json:
        from repro.sim.export import result_to_json

        with open(args.json, "w") as fh:
            fh.write(result_to_json(result))
        print(f"  wrote {args.json}")
    if args.csv:
        from repro.sim.export import batches_to_csv

        with open(args.csv, "w") as fh:
            fh.write(batches_to_csv(result))
        print(f"  wrote {args.csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    machine = opteron_8380_machine(num_cores=args.cores)
    program = benchmark_program(args.benchmark, batches=args.batches, seed=args.seed)
    rows = []
    base = None
    for name in POLICY_NAMES:
        result = simulate(program, make_policy(name), machine, seed=args.seed)
        if base is None:
            base = result
        rows.append(
            (
                name,
                result.total_time * 1e3,
                result.total_joules,
                result.total_time / base.total_time,
                result.total_joules / base.total_joules,
            )
        )
    print(
        format_table(
            ["policy", "time (ms)", "energy (J)", "t/cilk", "E/cilk"],
            rows,
            title=f"{args.benchmark} on {args.cores} cores (seed {args.seed})",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    seeds = (args.seed,)
    if args.exhibit == "fig1":
        print(
            format_table(
                ["schedule", "time (s)", "energy (J)"],
                fig1_rows(0.1),
                title="Fig. 1 — four dual-core schedules + simulated EEWA",
            )
        )
    elif args.exhibit == "fig6":
        print(run_fig6(seeds=seeds).table())
    elif args.exhibit == "fig7":
        print(run_fig7(seeds=seeds).table())
    elif args.exhibit == "fig8":
        print(run_fig8(seed=args.seed).table())
    elif args.exhibit == "fig9":
        print(run_fig9(seeds=seeds).table())
    elif args.exhibit == "table3":
        print(run_table3(seed=args.seed).table())
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.workloads.generators import generate_program
    from repro.workloads.io import load_spec
    from repro.workloads.validation import diagnose

    spec = load_spec(args.spec_file)
    machine = opteron_8380_machine(num_cores=args.cores)
    if args.diagnose:
        print(diagnose(spec, args.cores).summary())
        print()
    program = generate_program(spec, batches=args.batches, seed=args.seed)
    result = simulate(program, make_policy(args.policy), machine, seed=args.seed)
    print(
        f"{spec.name} / {args.policy} on {args.cores} cores: "
        f"{result.total_time*1e3:.1f} ms, {result.total_joules:.2f} J, "
        f"{result.tasks_executed} tasks"
    )
    for bt in result.trace.batches:
        print(f"  batch {bt.batch_index:3d}: {bt.duration*1e3:8.2f} ms | "
              f"{bt.level_histogram}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.parallel import BenchRequest, ParallelRunner

    machine = opteron_8380_machine(num_cores=args.cores)
    runner = ParallelRunner(
        machine=machine,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    requests = [
        BenchRequest(
            benchmark=name, policy=policy,
            batches=args.batches, seeds=tuple(args.seeds),
        )
        for name in args.benchmarks
        for policy in args.policies
    ]
    started = time.perf_counter()
    outcomes = runner.run_many(requests)
    wall = time.perf_counter() - started
    rows = [
        (
            o.benchmark,
            o.policy,
            o.time_mean * 1e3,
            o.energy_mean,
        )
        for o in outcomes
    ]
    print(
        format_table(
            ["benchmark", "policy", "time (ms)", "energy (J)"],
            rows,
            title=(
                f"bench sweep — {len(args.benchmarks)} benchmarks x "
                f"{len(args.policies)} policies x {len(args.seeds)} seeds"
            ),
        )
    )
    stats = runner.stats
    print(
        f"  {stats.cells} cells in {wall:.2f} s: {stats.executed} simulated, "
        f"{stats.cache_hits} from cache, {stats.deduplicated} deduplicated"
    )
    if args.json:
        import json

        payload = {
            "machine_cores": args.cores,
            "seeds": list(args.seeds),
            "wall_seconds": wall,
            "stats": {
                "cells": stats.cells,
                "executed": stats.executed,
                "cache_hits": stats.cache_hits,
                "deduplicated": stats.deduplicated,
            },
            "cells": [
                {
                    "benchmark": o.benchmark,
                    "policy": o.policy,
                    "time_mean_s": o.time_mean,
                    "energy_mean_j": o.energy_mean,
                    "per_seed": [
                        {
                            "total_time": r.total_time,
                            "total_joules": r.total_joules,
                            "tasks_executed": r.tasks_executed,
                        }
                        for r in o.results
                    ],
                }
                for o in outcomes
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"  wrote {args.json}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.kernels.profile import REFERENCE_COSTS, measure_kernel_costs

    costs = measure_kernel_costs(repeats=args.repeats)
    rows = [
        (bench, cls, costs[(bench, cls)] * 1e3, REFERENCE_COSTS[(bench, cls)] * 1e3)
        for (bench, cls) in sorted(costs)
    ]
    print(
        format_table(
            ["benchmark", "stage", "measured (ms)", "frozen (ms)"],
            rows,
            title=f"kernel stage costs ({args.repeats} repeats, median)",
            float_fmt="{:.2f}",
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        from repro.checks.runner import main as check_main

        return check_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "run-spec":
        return _cmd_run_spec(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
