"""Hypothesis property tests on the engine: conservation laws hold for
random workloads under every shipped policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eewa import EEWAScheduler
from repro.machine.topology import small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

# -- strategies ----------------------------------------------------------------

REF = 2.0e9

task_sizes = st.floats(min_value=1e-4, max_value=0.05)

programs = st.lists(
    st.lists(task_sizes, min_size=1, max_size=20),
    min_size=1,
    max_size=4,
).map(
    lambda batches: [
        flat_batch(
            i,
            [TaskSpec(f"c{j % 3}", cpu_cycles=s * REF) for j, s in enumerate(sizes)],
        )
        for i, sizes in enumerate(batches)
    ]
)

policy_factories = st.sampled_from(
    [CilkScheduler, CilkDScheduler, EEWAScheduler]
)

machines = st.sampled_from(
    [
        small_test_machine(num_cores=1),
        small_test_machine(num_cores=3),
        small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9)),
    ]
)


@settings(max_examples=60, deadline=None)
@given(programs, policy_factories, machines, st.integers(min_value=0, max_value=99))
def test_every_task_executes_exactly_once(program, factory, machine, seed):
    result = simulate(program, factory(), machine, seed=seed)
    expected = sum(len(b) for b in program)
    assert result.tasks_executed == expected
    ids = [t.task_id for t in result.tasks]
    assert len(set(ids)) == len(ids)


@settings(max_examples=40, deadline=None)
@given(programs, policy_factories, machines, st.integers(min_value=0, max_value=99))
def test_energy_and_time_envelopes(program, factory, machine, seed):
    result = simulate(program, factory(), machine, seed=seed)
    # Time: at least the critical path (longest single task), at most the
    # serial sum at the slowest frequency plus generous scheduling slop.
    longest = max(s.cpu_cycles for b in program for s in b.specs) / machine.scale.fastest
    serial_slowest = (
        sum(s.cpu_cycles for b in program for s in b.specs) / machine.scale.slowest
    )
    assert result.total_time >= longest - 1e-12
    assert result.total_time <= serial_slowest * 1.5 + 0.1
    # Energy: between all-idle and all-busy-at-top-frequency envelopes.
    p_lo = machine.power.machine_power([], machine.num_cores)
    p_hi = machine.power.machine_power(
        [machine.scale.fastest] * machine.num_cores, 0
    )
    assert p_lo * result.total_time <= result.total_joules + 1e-9
    assert result.total_joules <= p_hi * result.total_time + 1e-9


@settings(max_examples=40, deadline=None)
@given(programs, policy_factories, st.integers(min_value=0, max_value=99))
def test_meter_time_accounting_closes(program, factory, seed):
    machine = small_test_machine(num_cores=3)
    result = simulate(program, factory(), machine, seed=seed)
    for account in result.meter.accounts:
        assert abs(account.seconds - result.total_time) < 1e-9
        assert abs(sum(account.seconds_by_state.values()) - result.total_time) < 1e-9


@settings(max_examples=30, deadline=None)
@given(programs, policy_factories, st.integers(min_value=0, max_value=99))
def test_task_times_consistent_with_levels(program, factory, seed):
    machine = small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))
    result = simulate(program, factory(), machine, seed=seed)
    for task in result.tasks:
        f = machine.scale[task.executed_level]
        expected = task.spec.cpu_cycles / f
        # Mid-run retunes cannot happen without DVFS domains, so the
        # elapsed time must match the level exactly.
        assert abs(task.elapsed - expected) < 1e-9


@settings(max_examples=25, deadline=None)
@given(programs, st.integers(min_value=0, max_value=99))
def test_determinism_property(program, seed):
    machine = small_test_machine(num_cores=3)
    a = simulate(program, EEWAScheduler(), machine, seed=seed)
    b = simulate(program, EEWAScheduler(), machine, seed=seed)
    assert a.total_time == b.total_time
    assert a.total_joules == b.total_joules
