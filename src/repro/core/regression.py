"""Regression-modelled CC tables for memory-bound classes.

This implements the paper's stated future work (Section IV-D): "By
analyzing the execution time of memory-bound tasks on cores of different
frequencies through machine learning, it is possible for EEWA to create a
correct CC table for memory-bound applications."

We use the natural two-parameter model

``t(f) = a / f + b``

where ``a`` is frequency-scalable CPU cycles and ``b`` the
frequency-invariant memory-stall time. Given per-class observations of
``(frequency, elapsed)`` pairs — which EEWA accumulates for free once
batches have executed on heterogeneous c-groups — ordinary least squares on
the design matrix ``[1/f, 1]`` recovers ``(a, b)``, and the class's core
demand at level ``j`` becomes ``n * t(F_j) / T`` instead of the naive
``(F_0/F_j) * n * t(F_0) / T``.

With only one distinct frequency observed the system is underdetermined;
we then fall back to the CPU-bound assumption (``b = 0``), which is exactly
the paper's baseline behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cc_table import CCTable
from repro.errors import ProfilingError
from repro.machine.operating_point import OperatingPointSpace


@dataclass(frozen=True)
class FrequencyTimeModel:
    """Fitted per-class execution-time model ``t(f) = a/f + b``."""

    cpu_cycles: float  # a
    stall_seconds: float  # b
    observations: int
    distinct_frequencies: int

    def predict(self, frequency: float) -> float:
        if frequency <= 0:
            raise ProfilingError("frequency must be positive")
        return self.cpu_cycles / frequency + self.stall_seconds

    @property
    def is_degenerate(self) -> bool:
        """True when the fit had no frequency diversity (b forced to 0)."""
        return self.distinct_frequencies < 2


def fit_frequency_time_model(
    frequencies: np.ndarray | list[float],
    elapsed: np.ndarray | list[float],
) -> FrequencyTimeModel:
    """Least-squares fit of ``t(f) = a/f + b`` with non-negativity clamping."""
    f = np.asarray(frequencies, dtype=np.float64)
    t = np.asarray(elapsed, dtype=np.float64)
    if f.shape != t.shape or f.ndim != 1 or f.size == 0:
        raise ProfilingError("need matching, non-empty 1-D observation arrays")
    if np.any(f <= 0) or np.any(t < 0):
        raise ProfilingError("frequencies must be positive and times non-negative")

    distinct = int(np.unique(f).size)
    if distinct < 2:
        # Underdetermined: assume pure CPU-bound (b = 0), a = mean(t * f).
        a = float(np.mean(t * f))
        return FrequencyTimeModel(
            cpu_cycles=a, stall_seconds=0.0, observations=int(f.size),
            distinct_frequencies=distinct,
        )

    design = np.column_stack([1.0 / f, np.ones_like(f)])
    coef, *_ = np.linalg.lstsq(design, t, rcond=None)
    a, b = float(coef[0]), float(coef[1])
    # Physical clamps: neither component can be negative. Re-solve the
    # constrained corner cases analytically.
    if a < 0:
        a, b = 0.0, float(np.mean(t))
    elif b < 0:
        a, b = float(np.mean(t * f)), 0.0
    return FrequencyTimeModel(
        cpu_cycles=a, stall_seconds=b, observations=int(f.size),
        distinct_frequencies=distinct,
    )


@dataclass
class RegressionProfiler:
    """Accumulates per-class ``(effective speed, elapsed)`` observations.

    Samples are keyed by the operating point's *effective* hertz (frequency
    times IPC scale): two operating points of different core types sharing
    an electrical frequency retire cycles at different rates, and the model
    ``t(f) = a/f + b`` cares about the retire rate. On homogeneous machines
    the effective speed is bitwise the frequency.
    """

    scale: OperatingPointSpace
    _samples: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def observe(
        self, function: str, elapsed: float, level: int, core_type: str | None = None
    ) -> None:
        if core_type is None:
            freq = self.scale[self.scale.validate_index(level)]
        else:
            freq = self.scale.effective(self.scale.index_for(core_type, level))
        self._samples.setdefault(function, []).append((freq, elapsed))

    def sample_count(self, function: str) -> int:
        return len(self._samples.get(function, ()))

    def fit(self, function: str) -> FrequencyTimeModel:
        samples = self._samples.get(function)
        if not samples:
            raise ProfilingError(f"no observations for class {function!r}")
        f, t = zip(*samples)
        return fit_frequency_time_model(list(f), list(t))

    def functions(self) -> list[str]:
        return sorted(self._samples)


def build_regression_cc_table(
    profiler: RegressionProfiler,
    class_counts: dict[str, int],
    scale: OperatingPointSpace,
    ideal_time: float,
    *,
    headroom: float = 0.10,
) -> CCTable:
    """CC table whose rows come from fitted ``t(f)`` models, not Eq. 1 scaling.

    ``class_counts`` maps function name -> number of tasks ``n`` expected in
    the next batch. Classes are ordered heaviest-first by their predicted
    workload at ``F_0`` so the k-tuple monotonicity constraint still applies.

    Entries use the same granularity-aware (discrete) packing as the main
    CC table: ``ceil(n / floor(T / (t_pred * (1 + headroom))))`` cores, with
    a level marked infeasible (``inf``) when a single predicted task blows
    the budget, and the ``F_0`` column clamped so the class always remains
    schedulable.
    """
    if ideal_time <= 0:
        raise ProfilingError("ideal_time must be positive")
    if headroom < 0:
        raise ProfilingError("headroom must be non-negative")
    names = [fn for fn in profiler.functions() if fn in class_counts]
    if not names:
        raise ProfilingError("no overlapping classes between profiler and counts")

    models = {fn: profiler.fit(fn) for fn in names}
    # Predictions evaluate the model at each operating point's *effective*
    # speed — bitwise the electrical frequency on homogeneous machines.
    names.sort(key=lambda fn: (-models[fn].predict(scale.effective(0)), fn))

    r = scale.r
    values = np.zeros((r, len(names)), dtype=np.float64)
    for i, fn in enumerate(names):
        n = class_counts[fn]
        for j in range(r):
            t_pred = models[fn].predict(scale.effective(j)) * (1.0 + headroom)
            if t_pred <= 0:
                values[j, i] = 0.0
            elif t_pred > ideal_time:
                values[j, i] = np.inf
            else:
                per_core = int(ideal_time / t_pred)
                values[j, i] = np.ceil(n / per_core)
        if not np.isfinite(values[0, i]):
            fluid = n * models[fn].predict(scale.effective(0)) / ideal_time
            values[0, i] = min(float(np.ceil(fluid)), float(max(1, n)))

    return CCTable(
        scale=scale,
        class_names=tuple(names),
        values=values,
        ideal_time=ideal_time,
    )
