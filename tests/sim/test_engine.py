"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.machine.topology import small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.policy import SchedulerPolicy, Wait
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import Simulator, simulate

REF = 2.0e9  # fastest level of small_test_machine


def batch_of(index, *seconds, function="work"):
    return flat_batch(
        index, [TaskSpec(function, cpu_cycles=s * REF) for s in seconds]
    )


class TestBasicExecution:
    def test_single_task_single_core(self):
        machine = small_test_machine(num_cores=1)
        result = simulate([batch_of(0, 0.5)], CilkScheduler(), machine)
        assert result.tasks_executed == 1
        # pop cost: 400 cycles at 2 GHz
        assert result.total_time == pytest.approx(0.5 + 400 / REF)

    def test_two_tasks_two_cores_parallel(self):
        machine = small_test_machine(num_cores=2)
        result = simulate([batch_of(0, 0.5, 0.5)], CilkScheduler(), machine)
        assert result.total_time == pytest.approx(0.5 + 400 / REF)

    def test_batches_run_sequentially(self):
        machine = small_test_machine(num_cores=2)
        program = [batch_of(0, 0.1, 0.1), batch_of(1, 0.1, 0.1)]
        result = simulate(program, CilkScheduler(), machine)
        assert result.batches_executed == 2
        assert result.total_time == pytest.approx(0.2 + 2 * 400 / REF)

    def test_all_tasks_execute_exactly_once(self, two_class_program):
        machine = small_test_machine(num_cores=4)
        result = simulate(two_class_program, CilkScheduler(), machine)
        expected = sum(len(b) for b in two_class_program)
        assert result.tasks_executed == expected
        ids = [t.task_id for t in result.tasks]
        assert len(ids) == len(set(ids))

    def test_work_conservation(self, two_class_program):
        """Total busy-running time equals total task time at the used freqs."""
        machine = small_test_machine(num_cores=4)
        result = simulate(two_class_program, CilkScheduler(), machine)
        running = sum(
            acct.seconds_by_state.get(
                __import__("repro.machine.core", fromlist=["CoreState"]).CoreState.RUNNING,
                0.0,
            )
            for acct in result.meter.accounts
        )
        task_time = sum(t.finish_time - t.start_time for t in result.tasks)
        acquire_time = running - task_time  # pop/steal charges
        assert acquire_time >= 0
        assert acquire_time < 0.01 * running + 1e-6

    def test_empty_program_rejected(self):
        machine = small_test_machine()
        with pytest.raises(SimulationError):
            simulate([], CilkScheduler(), machine)


class TestStealing:
    def test_imbalanced_batch_triggers_steals(self):
        machine = small_test_machine(num_cores=2)
        # Eight tasks land round-robin; the heavy task is pushed last onto
        # core 0's LIFO deque, so core 0 pops it first and its queued small
        # tasks become steal targets for core 1.
        program = [batch_of(0, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.4, 0.01)]
        result = simulate(program, CilkScheduler(), machine, seed=5)
        assert result.policy_stats["tasks_stolen"] > 0
        # Makespan far below serial sum: parallelism worked.
        assert result.total_time < 0.45

    def test_spin_energy_positive_for_imbalance(self):
        machine = small_test_machine(num_cores=2)
        program = [batch_of(0, 0.4, 0.01)]
        result = simulate(program, CilkScheduler(), machine)
        assert result.spin_joules > 0.0


class TestSpawning:
    def test_children_spawn_and_complete(self):
        machine = small_test_machine(num_cores=2)
        child = TaskSpec("child", cpu_cycles=0.05 * REF)
        parent = TaskSpec("parent", cpu_cycles=0.1 * REF, children=(child, child))
        program = [flat_batch(0, [parent])]
        result = simulate(program, CilkScheduler(), machine)
        assert result.tasks_executed == 3
        functions = sorted(t.function for t in result.tasks)
        assert functions == ["child", "child", "parent"]

    def test_children_overlap_with_parent(self):
        """Spawned children are stealable while the parent still runs."""
        machine = small_test_machine(num_cores=2)
        child = TaskSpec("child", cpu_cycles=0.1 * REF)
        parent = TaskSpec("parent", cpu_cycles=0.1 * REF, children=(child,))
        result = simulate([flat_batch(0, [parent])], CilkScheduler(), machine)
        assert result.total_time < 0.19  # parallel, not 0.2 serial


class TestDeterminism:
    def test_same_seed_identical_results(self, two_class_program):
        machine = small_test_machine(num_cores=4)
        a = simulate(two_class_program, CilkScheduler(), machine, seed=9)
        b = simulate(two_class_program, CilkScheduler(), machine, seed=9)
        assert a.total_time == b.total_time
        assert a.total_joules == b.total_joules
        assert [t.task_id for t in a.tasks] == [t.task_id for t in b.tasks]

    def test_different_seed_may_differ(self, two_class_program):
        machine = small_test_machine(num_cores=4)
        a = simulate(two_class_program, CilkScheduler(), machine, seed=1)
        b = simulate(two_class_program, CilkScheduler(), machine, seed=2)
        # Times may coincide, but the steal pattern generally differs.
        assert (
            a.policy_stats["tasks_stolen"] != b.policy_stats["tasks_stolen"]
            or a.total_time != b.total_time
            or a.total_joules == b.total_joules  # degenerate but allowed
        )


class TestLivelockGuard:
    def test_runaway_policy_detected(self):
        class BadPolicy(SchedulerPolicy):
            name = "bad"

            def on_batch_start(self, batch, tasks):
                self._tasks = list(tasks)

            def next_action(self, core_id):
                # Never hands out work, but keeps asking for instant retries.
                return Wait(retry_after=0.0)

        machine = small_test_machine(num_cores=1)
        sim = Simulator(machine, BadPolicy(), max_events=5000)
        with pytest.raises(SimulationError, match="livelock|outstanding"):
            sim.run([batch_of(0, 0.1)])
