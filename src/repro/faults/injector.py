"""Deterministic fault draws for the discrete-event engine.

A :class:`FaultInjector` binds a :class:`~repro.faults.spec.FaultSpec` to
an :class:`~repro.sim.rng.RngStreams` registry — the engine hands it a
``spawn_child("faults")`` of the run's root streams, so fault draws are
fully determined by *(seed, spec, event order)* and never advance the
policy or workload streams. Each channel draws from its own named stream;
a channel whose rate is zero draws nothing at all, so enabling one fault
type leaves the draw sequences of the others untouched.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.faults.spec import FaultSpec
from repro.machine.counters import PerfCounters
from repro.sim.rng import RngStreams


class FaultInjector:
    """Per-run fault oracle; one instance per :class:`Simulator`."""

    def __init__(self, spec: FaultSpec, rng: RngStreams) -> None:
        self.spec = spec
        self._rng = rng
        #: How often each channel actually fired (engine observability).
        self.counts = {
            "dvfs_denied": 0,
            "dvfs_delayed": 0,
            "stalls": 0,
            "counters_corrupted": 0,
        }

    def deny_dvfs(self, core_id: int) -> bool:
        """Whether this core's pending DVFS request is denied."""
        rate = self.spec.dvfs_deny_rate
        if rate <= 0.0:
            return False
        if self._rng.uniform("deny", 0.0, 1.0) < rate:
            self.counts["dvfs_denied"] += 1
            return True
        return False

    def dvfs_extra_latency(self, core_id: int) -> float:
        """Extra seconds added to a granted transition (0.0 = nominal)."""
        rate = self.spec.dvfs_delay_rate
        if rate <= 0.0:
            return 0.0
        if self._rng.uniform("delay", 0.0, 1.0) < rate:
            self.counts["dvfs_delayed"] += 1
            return self.spec.dvfs_delay_s
        return 0.0

    def stall_seconds(self, core_id: int) -> float:
        """Offline-window length if the core stalls now (0.0 = healthy)."""
        rate = self.spec.stall_rate
        if rate <= 0.0:
            return 0.0
        if self._rng.uniform("stall", 0.0, 1.0) < rate:
            self.counts["stalls"] += 1
            return self.spec.stall_duration_s
        return 0.0

    def corrupt_counters(
        self, counters: Optional[PerfCounters]
    ) -> Optional[PerfCounters]:
        """Corrupted replacement for a task's PMU reading, or ``None``.

        Draws only when the task actually carries counters, so counterless
        workloads consume no randomness from this channel. The corruption
        adds spurious cache misses proportional to retired instructions,
        scaled by a second draw — the noise the paper's memory-boundness
        classifier would face on real PMUs.
        """
        rate = self.spec.counter_noise_rate
        if rate <= 0.0 or counters is None:
            return None
        if self._rng.uniform("corrupt", 0.0, 1.0) >= rate:
            return None
        magnitude = self._rng.uniform("corrupt", 0.0, 1.0)
        spurious = int(
            round(
                magnitude
                * self.spec.counter_noise_intensity
                * counters.retired_instructions
            )
        )
        if spurious <= 0:
            return None
        self.counts["counters_corrupted"] += 1
        return replace(
            counters, cache_misses=counters.cache_misses + spurious
        )


__all__ = ["FaultInjector"]
