"""Typed scenario specifications.

A :class:`ScenarioSpec` is the first-class representation of one point in
the paper's evaluation space: *(machine × workload × policy × seeds)*.
Every entry point — the CLI, the figure modules, the parallel cached
runner, the checks — consumes these specs instead of re-wiring machines,
seeds, and policy construction by hand.

Specs are frozen, JSON-round-trippable (with schema versioning and
unknown-field rejection), and carry a stable content digest
(:meth:`ScenarioSpec.digest`) computed over the *resolved* machine,
workload, and policy content — the digest that keys the result cache in
:mod:`repro.experiments.parallel`.

JSON form (``repro run-spec scenario.json``)::

    {
      "schema": 3,
      "workload": "SHA-1",                 // registry name, or an inline
                                           // workload object with "classes"
      "policy": {"name": "eewa", "params": {"headroom": 0.2}},
      "machine": {"preset": "opteron-8380", "num_cores": 16},
      "seeds": [11, 23, 37],
      "batches": 10,
      "faults": {"dvfs_deny_rate": 0.3}    // optional fault injection
    }

Heterogeneous machines pin the per-type core partition with the schema-v3
``core_types`` axis (preset must support it)::

    "machine": {"preset": "big-little-test",
                "core_types": [["big", 4], ["little", 4]]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.errors import ScenarioError
from repro.faults.spec import FaultSpec
from repro.machine.topology import MachineConfig
from repro.runtime.policy import SchedulerPolicy
from repro.runtime.task import Batch
from repro.scenario.registry import MACHINES, POLICIES, WORKLOADS
from repro.sim.fingerprint import canonical_value, digest
from repro.workloads.io import spec_from_dict, spec_to_dict
from repro.workloads.spec import WorkloadSpec

#: Version of the scenario JSON schema *and* of the digest layout. Bump on
#: any change to the spec fields or their canonical encoding: the bump
#: invalidates every result-cache entry written under the old layout.
#: v2 added the optional ``faults`` axis. v3 added the machine
#: ``core_types`` axis, and the machine canonical encoding changed
#: underneath it (operating-point spaces replaced flat frequency ladders).
SCENARIO_SCHEMA_VERSION = 3

#: Schema versions :meth:`ScenarioSpec.from_dict` accepts. v1/v2 documents
#: are strict subsets of v3 (no ``faults``/``core_types`` keys), so all
#: three read cleanly.
_READABLE_SCHEMAS = frozenset({1, 2, SCENARIO_SCHEMA_VERSION})

#: Seeds used when a scenario does not pin its own (the simulated stand-in
#: for the paper's 100 repeated hardware runs).
DEFAULT_SEEDS = (11, 23, 37)

_INLINE_PRESET = "<inline>"


@dataclass(frozen=True)
class MachineSpec:
    """Machine axis: a registered preset name plus overrides.

    ``config`` is the escape hatch for API callers holding an arbitrary
    :class:`MachineConfig` (e.g. unusual ladders in tests); inline machines
    participate in digests but cannot be serialised to JSON.
    """

    preset: str = "opteron-8380"
    num_cores: Optional[int] = None
    #: Schema-v3 axis: ordered per-type core counts for heterogeneous
    #: presets (``supports_core_types``), e.g. ``(("big", 2), ("little", 6))``.
    core_types: Optional[tuple[tuple[str, int], ...]] = None
    config: Optional[MachineConfig] = None

    def __post_init__(self) -> None:
        if self.config is None:
            object.__setattr__(self, "preset", MACHINES.canonical(self.preset))
        if self.num_cores is not None and self.num_cores < 1:
            raise ScenarioError("num_cores must be >= 1")
        if self.core_types is not None:
            if self.config is not None:
                raise ScenarioError(
                    "core_types cannot override an inline MachineConfig"
                )
            normalised = tuple(
                (str(name), int(count)) for name, count in self.core_types
            )
            if not normalised:
                raise ScenarioError("core_types must be non-empty when given")
            if any(count < 1 for _, count in normalised):
                raise ScenarioError("core_types counts must be >= 1")
            object.__setattr__(self, "core_types", normalised)

    @classmethod
    def inline(
        cls, config: MachineConfig, *, num_cores: Optional[int] = None
    ) -> "MachineSpec":
        return cls(preset=_INLINE_PRESET, num_cores=num_cores, config=config)

    def build(self) -> MachineConfig:
        if self.config is not None:
            if self.num_cores is not None:
                return self.config.with_cores(self.num_cores)
            return self.config
        return MACHINES.get(self.preset).build(self.num_cores, self.core_types)

    def to_dict(self) -> dict[str, Any]:
        if self.config is not None:
            raise ScenarioError(
                "an inline MachineConfig cannot be serialised; use a "
                "registered preset"
            )
        data: dict[str, Any] = {"preset": self.preset}
        if self.num_cores is not None:
            data["num_cores"] = self.num_cores
        if self.core_types is not None:
            data["core_types"] = [[name, count] for name, count in self.core_types]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineSpec":
        if not isinstance(data, Mapping):
            raise ScenarioError("machine must be a JSON object")
        unknown = set(data) - {"preset", "num_cores", "core_types"}
        if unknown:
            raise ScenarioError(f"unknown machine fields: {sorted(unknown)}")
        num_cores = data.get("num_cores")
        raw_types = data.get("core_types")
        core_types: Optional[tuple[tuple[str, int], ...]] = None
        if raw_types is not None:
            if isinstance(raw_types, (str, bytes)) or not isinstance(
                raw_types, Sequence
            ):
                raise ScenarioError(
                    "core_types must be a list of [type_name, count] pairs"
                )
            try:
                core_types = tuple(
                    (str(name), int(count)) for name, count in raw_types
                )
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    "core_types must be a list of [type_name, count] pairs"
                ) from exc
        return cls(
            preset=str(data.get("preset", "opteron-8380")),
            num_cores=None if num_cores is None else int(num_cores),
            core_types=core_types,
        )


@dataclass(frozen=True)
class PolicySpec:
    """Policy axis: registry name, optional fixed levels, tunables.

    ``params`` holds JSON-scalar tunables (stored as sorted key/value
    pairs so the spec stays hashable and order-insensitive); ``config`` is
    the escape hatch for an in-memory config object (e.g.
    :class:`~repro.core.eewa.EEWAConfig`), which participates in digests
    but cannot be serialised to JSON.
    """

    name: str
    core_levels: Optional[tuple[int, ...]] = None
    params: tuple[tuple[str, Any], ...] = ()
    config: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", POLICIES.canonical(self.name))
        if self.core_levels is not None:
            object.__setattr__(
                self, "core_levels", tuple(int(v) for v in self.core_levels)
            )
        if isinstance(self.params, Mapping):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        else:
            object.__setattr__(self, "params", tuple(sorted(self.params)))

    @property
    def entry(self):
        return POLICIES.get(self.name)

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def build(self) -> SchedulerPolicy:
        return self.entry.build(
            core_levels=self.core_levels,
            params=self.params_dict() or None,
            config=self.config,
        )

    def to_dict(self) -> dict[str, Any]:
        if self.config is not None:
            raise ScenarioError(
                f"{self.name}: an inline policy config object cannot be "
                "serialised; use JSON params"
            )
        data: dict[str, Any] = {"name": self.name}
        if self.core_levels is not None:
            data["core_levels"] = list(self.core_levels)
        if self.params:
            data["params"] = self.params_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, Mapping):
            raise ScenarioError("policy must be a JSON object or a name string")
        unknown = set(data) - {"name", "core_levels", "params"}
        if unknown:
            raise ScenarioError(f"unknown policy fields: {sorted(unknown)}")
        if "name" not in data:
            raise ScenarioError("policy needs a 'name'")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ScenarioError("policy params must be a JSON object")
        levels = data.get("core_levels")
        return cls(
            name=str(data["name"]),
            core_levels=None if levels is None else tuple(int(v) for v in levels),
            params=tuple(sorted(params.items())),
        )


WorkloadRef = Union[str, WorkloadSpec]


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluated point: machine × workload × policy × seeds.

    ``workload`` is either a registered workload name or an inline
    :class:`~repro.workloads.spec.WorkloadSpec` (both serialise to JSON).
    """

    workload: WorkloadRef
    policy: PolicySpec
    machine: MachineSpec = field(default_factory=MachineSpec)
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    batches: Optional[int] = None
    #: Optional fault injection applied to every cell of this scenario.
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if isinstance(self.policy, str):
            object.__setattr__(self, "policy", PolicySpec(name=self.policy))
        if isinstance(self.workload, str):
            # Fail fast on unknown names (and canonicalise aliases).
            object.__setattr__(
                self, "workload", WORKLOADS.get(self.workload).name
            )
        elif not isinstance(self.workload, WorkloadSpec):
            raise ScenarioError(
                "workload must be a registered name or a WorkloadSpec, "
                f"got {type(self.workload).__name__}"
            )
        if isinstance(self.seeds, int):
            object.__setattr__(self, "seeds", (self.seeds,))
        else:
            object.__setattr__(
                self, "seeds", tuple(int(s) for s in self.seeds)
            )
        if not self.seeds:
            raise ScenarioError("a scenario needs at least one seed")
        if self.batches is not None and self.batches < 1:
            raise ScenarioError("batches must be >= 1")

    # -- resolution ------------------------------------------------------

    @property
    def workload_name(self) -> str:
        return self.workload if isinstance(self.workload, str) else self.workload.name

    def resolve_workload(self) -> WorkloadSpec:
        if isinstance(self.workload, WorkloadSpec):
            return self.workload
        return WORKLOADS.get(self.workload).spec()

    def program(self, seed: int) -> list[Batch]:
        """Generate this scenario's program for one seed."""
        from repro.workloads.generators import generate_program

        return generate_program(
            self.resolve_workload(), batches=self.batches, seed=seed
        )

    def build_machine(self) -> MachineConfig:
        return self.machine.build()

    def build_policy(self) -> SchedulerPolicy:
        """A fresh policy instance (policies are stateful and single-use)."""
        return self.policy.build()

    # -- derivation ------------------------------------------------------

    def with_seeds(self, seeds: Sequence[int]) -> "ScenarioSpec":
        return replace(self, seeds=tuple(seeds))

    def with_policy(self, policy: Union[str, PolicySpec]) -> "ScenarioSpec":
        return replace(
            self,
            policy=policy if isinstance(policy, PolicySpec) else PolicySpec(policy),
        )

    def with_faults(self, faults: Optional[FaultSpec]) -> "ScenarioSpec":
        return replace(self, faults=faults)

    def cells(self) -> Iterator[tuple["ScenarioSpec", int]]:
        for seed in self.seeds:
            yield self, seed

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "schema": SCENARIO_SCHEMA_VERSION,
            "workload": (
                self.workload
                if isinstance(self.workload, str)
                else spec_to_dict(self.workload)
            ),
            "policy": self.policy.to_dict(),
            "machine": self.machine.to_dict(),
            "seeds": list(self.seeds),
        }
        if self.batches is not None:
            data["batches"] = self.batches
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise ScenarioError("scenario spec must be a JSON object")
        unknown = set(data) - {
            "schema", "workload", "policy", "machine", "seeds", "batches",
            "faults",
        }
        if unknown:
            raise ScenarioError(f"unknown scenario fields: {sorted(unknown)}")
        schema = data.get("schema", SCENARIO_SCHEMA_VERSION)
        if schema not in _READABLE_SCHEMAS:
            raise ScenarioError(
                f"unsupported scenario schema {schema!r}; this version reads "
                f"schemas {sorted(_READABLE_SCHEMAS)}"
            )
        if "workload" not in data or "policy" not in data:
            raise ScenarioError("scenario spec needs 'workload' and 'policy'")
        raw_workload = data["workload"]
        workload: WorkloadRef
        if isinstance(raw_workload, str):
            workload = raw_workload
        elif isinstance(raw_workload, Mapping):
            workload = spec_from_dict(dict(raw_workload))
        else:
            raise ScenarioError(
                "workload must be a registered name or an inline workload object"
            )
        machine = data.get("machine")
        seeds = data.get("seeds", DEFAULT_SEEDS)
        if isinstance(seeds, (str, bytes)) or not isinstance(seeds, Sequence):
            raise ScenarioError("seeds must be a list of integers")
        batches = data.get("batches")
        faults = data.get("faults")
        return cls(
            workload=workload,
            policy=PolicySpec.from_dict(data["policy"]),
            machine=MachineSpec() if machine is None else MachineSpec.from_dict(machine),
            seeds=tuple(int(s) for s in seeds),
            batches=None if batches is None else int(batches),
            faults=None if faults is None else FaultSpec.from_dict(faults),
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ScenarioError(f"cannot load scenario from {path}: {exc}") from exc
        return cls.from_json(text)

    # -- identity --------------------------------------------------------

    def digest(self) -> str:
        """Stable content digest of the *resolved* scenario.

        Hashes the resolved workload spec, machine config, and policy
        configuration (not just their names), so two specs digest equal
        iff they describe identical simulations. Versioned by
        :data:`SCENARIO_SCHEMA_VERSION`.
        """
        return digest(
            [
                "scenario-spec", SCENARIO_SCHEMA_VERSION,
                "workload", canonical_value(self.resolve_workload()),
                "machine", canonical_value(self.build_machine()),
                "policy", self.policy.name,
                "core_levels", canonical_value(self.policy.core_levels),
                "params", canonical_value(self.policy.params),
                "config", canonical_value(self.policy.config),
                "seeds", canonical_value(self.seeds),
                "batches", self.batches,
                "faults", canonical_value(self.faults),
            ]
        )


__all__ = [
    "DEFAULT_SEEDS",
    "MachineSpec",
    "PolicySpec",
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioSpec",
    "WorkloadRef",
]
