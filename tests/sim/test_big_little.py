"""Simulation smoke tests on the heterogeneous big.LITTLE machine.

The dyadic big.LITTLE preset keeps all float arithmetic exact, so the
same bit-identity bar as the homogeneous suites applies: determinism and
fast-forward parity are fingerprint equality, not approximate scalars.
"""

import pytest

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.topology import big_little_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.runtime.wats import WATSScheduler
from repro.scenario.registry import spread_levels_for
from repro.sim.engine import simulate
from repro.sim.fingerprint import trace_fingerprint

POLICIES = ("cilk", "cilk-d", "wats", "eewa")
#: Dyadic adjuster costs so EEWA's overhead arithmetic stays float-exact.
DYADIC_OVERHEAD = OverheadModel(base_seconds=2.0**-11, per_cell_seconds=2.0**-17)


def make_policy(name, machine):
    if name == "cilk":
        return CilkScheduler()
    if name == "cilk-d":
        return CilkDScheduler()
    if name == "wats":
        return WATSScheduler(spread_levels_for(machine))
    return EEWAScheduler(EEWAConfig(overhead_model=DYADIC_OVERHEAD))


def program(batches=3, tasks=12):
    ref = big_little_test_machine().scale.fastest
    return [
        flat_batch(
            b,
            [TaskSpec("work", cpu_cycles=2.0**-6 * ref) for _ in range(tasks)],
        )
        for b in range(batches)
    ]


@pytest.mark.parametrize("name", POLICIES)
def test_policies_run_to_completion(name):
    machine = big_little_test_machine()
    result = simulate(program(), make_policy(name, machine), machine, seed=11)
    assert result.tasks_executed == 3 * 12
    assert result.batches_executed == 3
    assert result.total_joules > 0

@pytest.mark.parametrize("name", POLICIES)
def test_deterministic_across_repeats(name):
    machine = big_little_test_machine()
    a = simulate(program(), make_policy(name, machine), machine, seed=11)
    b = simulate(program(), make_policy(name, machine), machine, seed=11)
    assert trace_fingerprint(a) == trace_fingerprint(b)


@pytest.mark.parametrize("name", POLICIES)
def test_fast_forward_parity(name):
    machine = big_little_test_machine()
    fast = simulate(program(8), make_policy(name, machine), machine, seed=11)
    full = simulate(
        program(8), make_policy(name, machine), machine, seed=11,
        fast_forward=False,
    )
    assert trace_fingerprint(fast) == trace_fingerprint(full)


def test_little_cores_slower_than_big_at_top_level():
    """One task per core at level 0: little cores retire half as fast."""
    machine = big_little_test_machine(big_cores=1, little_cores=1)
    ref = machine.scale.fastest
    batch = flat_batch(0, [TaskSpec("work", cpu_cycles=2.0**-4 * ref)] * 2)
    result = simulate([batch], CilkScheduler(), machine, seed=1)
    assert result.tasks_executed == 2
    # The big core finishes its task in 2^-4 s; the little core needs twice
    # that (ipc 0.5 at the same declared hertz), so it is the straggler.
    assert result.total_time > 2.0 * 2.0**-4
