"""The trace race detector: vector clocks, broken-policy fixtures, and the
clean bill of health for every shipped policy."""

import pytest

from repro.checks.races import (
    DEFAULT_RACE_SEEDS,
    SHIPPED_POLICY_NAMES,
    check_shipped_policies,
    find_trace_races,
    vc_concurrent,
    vc_leq,
)
from repro.errors import SimulationError
from repro.machine.topology import small_test_machine
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import Simulator
from tests.checks.fixtures import BadStealOrder, DoubleExecutes, DropsTasks

REF = 2.0e9  # fastest level of the 4-core test machine


def _program(batches, sizes):
    return [
        flat_batch(
            i,
            [TaskSpec(f"c{j % 3}", cpu_cycles=s * REF) for j, s in enumerate(sizes)],
        )
        for i in range(batches)
    ]


def _deep_trace(policy, program, seed=3):
    """Run a deep-traced simulation; return the trace even on deadlock."""
    machine = small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))
    sim = Simulator(machine, policy, seed=seed, record_task_events=True)
    try:
        sim.run(program)
    except SimulationError:  # eewa: disable=EEWA006 - deadlock traces are the point
        pass
    return sim.trace


class TestVectorClocks:
    def test_leq_reflexive(self):
        assert vc_leq({0: 1, 1: 2}, {0: 1, 1: 2})

    def test_leq_ordered(self):
        assert vc_leq({0: 1}, {0: 2, 1: 5})
        assert not vc_leq({0: 2, 1: 5}, {0: 1})

    def test_missing_entries_are_zero(self):
        assert vc_leq({}, {0: 1})
        assert not vc_leq({0: 1}, {})

    def test_concurrent(self):
        assert vc_concurrent({0: 2, 1: 0}, {0: 1, 1: 3})
        assert not vc_concurrent({0: 1}, {0: 2})


class TestBrokenPolicies:
    def test_double_execution_detected(self):
        trace = _deep_trace(DoubleExecutes(), _program(1, [0.01] * 8))
        ids = {f.rule_id for f in find_trace_races(trace)}
        assert "EEWA201" in ids  # one task ran twice
        assert "EEWA202" in ids  # the dropped victim never ran
        assert "EEWA204" in ids  # second EXEC had no matching acquisition

    def test_double_execution_classified_as_stale_rerun(self):
        trace = _deep_trace(DoubleExecutes(), _program(1, [0.01] * 8))
        messages = [
            f.message for f in find_trace_races(trace) if f.rule_id == "EEWA201"
        ]
        assert messages and "stale reference re-run" in messages[0]

    def test_dropped_tasks_detected(self):
        trace = _deep_trace(DropsTasks(), _program(1, [0.01] * 6))
        findings = find_trace_races(trace)
        lost = [f for f in findings if f.rule_id == "EEWA202"]
        assert len(lost) == 2  # tasks 0 and 3 of 6 are dropped

    def test_dropped_tasks_deadlock_the_engine(self):
        machine = small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))
        sim = Simulator(machine, DropsTasks(), seed=3, record_task_events=True)
        with pytest.raises(SimulationError):
            sim.run(_program(1, [0.01] * 6))

    def test_bad_steal_order_detected(self):
        trace = _deep_trace(BadStealOrder(), _program(3, [0.002] * 9 + [0.05]))
        ids = {f.rule_id for f in find_trace_races(trace)}
        assert "EEWA205" in ids
        # The policy still executes everything exactly once...
        assert "EEWA201" not in ids and "EEWA202" not in ids

    def test_finding_labels_carry_context(self):
        trace = _deep_trace(DropsTasks(), _program(1, [0.01] * 6))
        findings = find_trace_races(trace, label="races(drops, seed=3)")
        assert all(f.location == "races(drops, seed=3)" for f in findings)


class TestShippedPolicies:
    def test_battery_is_clean(self):
        """cilk, cilk-d, wats and eewa are race-free on every battery
        (program, seed) combination — the PR's acceptance criterion."""
        assert len(DEFAULT_RACE_SEEDS) >= 3
        assert SHIPPED_POLICY_NAMES == ("cilk", "cilk-d", "wats", "eewa")
        findings = check_shipped_policies()
        assert findings == [], [f.message for f in findings]

    def test_battery_reports_simulation_failures(self):
        """A policy whose simulation crashes yields EEWA200, not a crash."""
        from repro.checks import races as races_mod

        original = races_mod._shipped_factory
        try:
            races_mod._shipped_factory = lambda name: DropsTasks
            findings = check_shipped_policies(seeds=(3,), policies=("cilk",))
        finally:
            races_mod._shipped_factory = original
        assert findings and all(f.rule_id == "EEWA200" for f in findings)
