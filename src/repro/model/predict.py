"""Closed-form per-cell makespan/energy prediction.

One simulated cell is a pure function of *(program, policy config,
machine, seed)*; for the policies below its steady state is also
*analytically expressible*, so the same numbers fall out of a few
arithmetic passes over the task specs instead of O(events) of
discrete-event replay:

``cilk``
    Every core runs busy (spinning or executing) at its pinned level for
    the whole run, so energy is exact given the makespan, and the
    makespan of one batch is a heaviest-first list schedule: local pops
    are LIFO over an ascending-sorted batch, so each core attacks its
    heaviest work first and stealing keeps no core idle while work
    remains.

``cilk-d``
    Cilk plus tail-idle DVFS: a core that finishes at ``f`` spins at
    ``F_0`` for the idle-grace window, pays one transition latency at
    idle power, then spins at the slowest level until the barrier — and
    pays the latency again (at idle power) when the next batch wakes it.

``eewa``
    The decision loop is replicated *exactly* — the model feeds the real
    :class:`~repro.core.profiler.OnlineProfiler` and
    :class:`~repro.core.adjuster.WorkloadAwareFrequencyAdjuster` with the
    same per-task observations the simulator would deliver, so the CC
    table, the k-tuple search, and the resulting c-group plans are the
    genuine articles. Each batch then costs one per-group list schedule;
    boundary windows bill exactly like the engine (changed cores idle
    through the DVFS transition, unchanged cores spin busy; at the final
    boundary the transition never completes, so changed cores idle
    through the whole trailing overhead window).

``wats`` (no analytic steady state claimed), fault-injected cells,
nested-spawn programs, shared DVFS domains, and eewa's regression mode
all *decline* (:func:`decline_reason`) — the sweep engine falls back to
full simulation for them, bit-identically.

The prediction is deterministic and seed-independent *given the
program* (the program itself already carries the seed's jitter/drift);
residual error versus the simulator comes from event-level noise the
model deliberately ignores (steal-scan quanta, random victim order) and
is measured honestly by :mod:`repro.model.validate`.
"""

from __future__ import annotations

import dataclasses
import functools
import heapq
from typing import Any, Optional, Sequence

from repro.machine.topology import MachineConfig
from repro.runtime.task import Batch, TaskSpec
from repro.sim.fingerprint import digest

#: Version tag of the model's *mathematics*. Part of every model cache
#: key: bump it whenever a predictor changes behaviour, and stale model
#: entries are orphaned without touching any simulation entry.
MODEL_VERSION = "eewa-model-1"

#: Policies with an analytically expressible steady state.
MODEL_POLICIES = frozenset({"cilk", "cilk-d", "eewa"})


def model_key(sim_key: str) -> str:
    """Cache key for the *model's* answer to the cell behind ``sim_key``.

    Namespaced and model-versioned: a model entry can never collide with
    (or shadow) the simulator's entry for the same cell, and bumping
    :data:`MODEL_VERSION` orphans only model entries.
    """
    return digest(["model", MODEL_VERSION, sim_key])


@dataclasses.dataclass(frozen=True)
class ModelResult:
    """Scalar result surface of one predicted cell.

    Field-compatible with the scalar half of
    :class:`~repro.sim.engine.SimResult` (what the exhibits, tables, and
    sweep consumers read); carries no trace, meter, or task records —
    that observability is exactly what the model path trades away.
    """

    policy_name: str
    total_time: float
    total_joules: float
    core_joules: float
    baseline_joules: float
    spin_joules: float
    running_joules: float
    tasks_executed: int
    batches_executed: int
    adjust_overhead_seconds: float = 0.0
    adjuster_decisions: int = 0
    policy_stats: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def average_power(self) -> float:
        if self.total_time <= 0:
            return 0.0
        return self.total_joules / self.total_time

    #: Mirror of the simulator's batch counters: a prediction replays
    #: nothing and fast-forwards nothing.
    batches_simulated: int = 0
    batches_fast_forwarded: int = 0


# ----------------------------------------------------------------------
# eligibility
# ----------------------------------------------------------------------


def _resolve_eewa_config(eewa_config, policy_params):
    from repro.core.eewa import EEWAConfig
    from repro.scenario.registry import eewa_config_from_params

    if eewa_config is not None:
        return eewa_config
    if policy_params:
        return eewa_config_from_params(dict(policy_params))
    return EEWAConfig()


def decline_reason(
    program: Sequence[Batch],
    policy: str,
    machine: MachineConfig,
    *,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Any = None,
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    faults: Any = None,
) -> Optional[str]:
    """Why this cell has no analytic prediction (``None`` = supported).

    *Structural* eligibility only — whether the math exists at all, not
    whether it is calibrated to be trusted (that second question is
    :func:`repro.model.bounds.classify_cell`). A declined cell always
    falls back to full simulation.
    """
    from repro.errors import ScenarioError
    from repro.scenario.registry import POLICIES

    try:
        name = POLICIES.canonical(policy)
    except ScenarioError:
        return f"unknown policy {policy!r}"
    if name not in MODEL_POLICIES:
        return f"policy {name!r} has no analytic steady state"
    if faults is not None:
        return "fault injection perturbs the steady state"
    if machine.dvfs_domains is not None:
        return "shared DVFS domains arbitrate requests dynamically"
    for batch in program:
        for spec in batch.specs:
            if spec.children:
                return "nested spawns unfold dynamically"
    if name == "cilk":
        if policy_params:
            return f"cilk params {sorted(dict(policy_params))} not modelled"
        if core_levels is not None and len(core_levels) != machine.num_cores:
            return "core_levels length does not match the machine"
    if name == "cilk-d":
        if policy_params and set(dict(policy_params)) - {"idle_grace_s"}:
            return (
                f"cilk-d params {sorted(dict(policy_params))} not modelled"
            )
    if name == "eewa":
        from repro.core.membound import MemoryBoundMode

        try:
            config = _resolve_eewa_config(eewa_config, policy_params)
        except ScenarioError as exc:
            return f"eewa params rejected: {exc}"
        if config.memory_bound_mode is MemoryBoundMode.REGRESSION:
            return "regression mode accumulates cross-batch state"
    return None


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------


class _PowerTables:
    """Per-core busy/idle watts, identical to the energy meter's tables."""

    __slots__ = ("busy", "idle", "base_power")

    def __init__(self, machine: MachineConfig) -> None:
        self.busy: list[tuple[float, ...]] = []
        self.idle: list[float] = []
        for c in range(machine.num_cores):
            power = machine.power_of(machine.core_type_of(c))
            ladder = machine.ladder_of(c)
            self.busy.append(tuple(power.busy_power(f) for f in ladder.levels))
            self.idle.append(power.idle_power())
        self.base_power = machine.power.machine_base_power


@functools.lru_cache(maxsize=64)
def _power_tables(machine: MachineConfig) -> _PowerTables:
    """Per-machine table cache: machines are shared across a sweep's cells."""
    return _PowerTables(machine)


def _speeds(machine: MachineConfig, levels: Sequence[int]) -> list[float]:
    return [
        machine.ladder_of(c).levels[levels[c]] * machine.ipc_of(c)
        for c in range(machine.num_cores)
    ]


def _pool_schedule(
    specs: Sequence[TaskSpec],
    core_ids: Sequence[int],
    speeds: Sequence[float],
    pop_cycles: float,
    steal_cycles: float,
    ready: Optional[dict[int, float]] = None,
    offset: int = 0,
) -> tuple[list[float], dict[int, float], dict[int, float], list[int]]:
    """Mean-field emulation of one batch's work-stealing pool dynamics.

    Tasks land round-robin across the cores in ``specs`` order (each
    core's deque a LIFO stack, exactly the engine's placement); a free
    core pops its own newest task, and an empty core steals the *oldest*
    queued task anywhere — the deterministic mean-field limit of the
    engine's random-victim FIFO steal. ``offset`` rotates the placement
    start the way the engine's seed-dependent rotation does: predictions
    use offset 0, and :func:`_rotation_invariant` sweeps the others to
    confirm the seed cannot move the makespan (on cores of equal speed
    it never can, which is why homogeneous-speed schedules need no
    sweep).

    ``ready`` gives per-core start offsets (cores still raising out of a
    low P-state); all other cores start at 0. Returns per-spec execution
    seconds (``specs`` order), per-core finish times and busy (running)
    seconds, and per-spec assigned core ids.
    """
    cores = sorted(core_ids)
    n = len(cores)
    nspecs = len(specs)
    stacks: list[list[int]] = [[] for _ in range(n)]
    for i in range(nspecs):
        stacks[(i + offset) % n].append(i)
    ready_of = ready or {}
    heap = [(ready_of.get(c, 0.0), slot) for slot, c in enumerate(cores)]
    heapq.heapify(heap)
    exec_seconds = [0.0] * nspecs
    assigned = [0] * nspecs
    finish: dict[int, float] = {c: ready_of.get(c, 0.0) for c in cores}
    busy: dict[int, float] = {c: 0.0 for c in cores}
    taken = [False] * nspecs
    steal_ptr = 0  # oldest possibly-queued task, in placement order
    remaining = nspecs
    while remaining:
        t, slot = heapq.heappop(heap)
        own = stacks[slot]
        i = -1
        while own:  # LIFO: newest local task not already stolen
            j = own.pop()
            if not taken[j]:
                i = j
                acquire = pop_cycles
                break
        if i < 0:
            while steal_ptr < nspecs and taken[steal_ptr]:
                steal_ptr += 1
            if steal_ptr == nspecs:
                continue  # nothing queued; this core spins to the barrier
            i = steal_ptr  # FIFO: oldest queued task anywhere
            steal_ptr += 1
            acquire = steal_cycles
        taken[i] = True
        core = cores[slot]
        spec = specs[i]
        speed = speeds[core]
        exec_s = spec.cpu_cycles / speed + spec.mem_stall_seconds
        dur = acquire / speed + exec_s
        done = t + dur
        heapq.heappush(heap, (done, slot))
        exec_seconds[i] = exec_s
        assigned[i] = core
        finish[core] = done
        busy[core] += dur
        remaining -= 1
    return exec_seconds, finish, busy, assigned


#: Largest relative makespan spread across placement rotations before a
#: mixed-speed schedule is declared seed-dependent and declined (half of
#: :data:`repro.model.bounds.MAX_RELATIVE_ERROR`, leaving the other half
#: for the mean-field emulation error itself).
_ROTATION_TOLERANCE = 0.01


def _rotation_invariant(
    specs: "tuple[TaskSpec, ...]",
    core_ids: Sequence[int],
    speeds: Sequence[float],
    machine: MachineConfig,
    makespan0: float,
) -> bool:
    """Whether the batch makespan survives every placement rotation.

    The engine places tasks round-robin from a seed-dependent start
    core. On mixed per-core speeds that rotation decides which tasks
    land on slow cores, and when work cannot rebalance through steals
    the makespan genuinely depends on the seed — something a
    seed-independent prediction must refuse to guess at.
    """
    for off in range(1, len(core_ids)):
        _, finish, _, _ = _pool_schedule(
            specs,
            core_ids,
            speeds,
            machine.pop_cycles,
            machine.steal_cycles,
            offset=off,
        )
        if abs(max(finish.values()) - makespan0) > _ROTATION_TOLERANCE * makespan0:
            return False
    return True


# ----------------------------------------------------------------------
# cilk
# ----------------------------------------------------------------------


def _predict_cilk(
    program: Sequence[Batch],
    machine: MachineConfig,
    core_levels: Optional[Sequence[int]],
) -> Optional[ModelResult]:
    m = machine.num_cores
    levels = list(core_levels) if core_levels is not None else [0] * m
    speeds = _speeds(machine, levels)
    power = _power_tables(machine)
    core_ids = list(range(m))
    mixed_speeds = len(set(speeds)) > 1

    total_time = 0.0
    running_by_core = [0.0] * m
    tasks = 0
    prev_specs: Optional[tuple[TaskSpec, ...]] = None
    cached: Optional[tuple[float, dict[int, float]]] = None
    for batch in program:
        tasks += len(batch.specs)
        if prev_specs is not None and batch.specs == prev_specs:
            assert cached is not None
            makespan, busy = cached
        else:
            _, finish, busy, _ = _pool_schedule(
                batch.specs,
                core_ids,
                speeds,
                machine.pop_cycles,
                machine.steal_cycles,
            )
            makespan = max(finish.values())
            if mixed_speeds and not _rotation_invariant(
                batch.specs, core_ids, speeds, machine, makespan
            ):
                return None
            prev_specs, cached = batch.specs, (makespan, busy)
        total_time += makespan
        for c, b in busy.items():
            running_by_core[c] += b

    core_joules = sum(power.busy[c][levels[c]] * total_time for c in core_ids)
    running_joules = sum(
        power.busy[c][levels[c]] * running_by_core[c] for c in core_ids
    )
    baseline = power.base_power * total_time
    return ModelResult(
        policy_name="cilk",
        total_time=total_time,
        total_joules=core_joules + baseline,
        core_joules=core_joules,
        baseline_joules=baseline,
        spin_joules=core_joules - running_joules,
        running_joules=running_joules,
        tasks_executed=tasks,
        batches_executed=len(program),
    )


# ----------------------------------------------------------------------
# cilk-d
# ----------------------------------------------------------------------


def _predict_cilk_d(
    program: Sequence[Batch],
    machine: MachineConfig,
    idle_grace_s: float,
) -> ModelResult:
    m = machine.num_cores
    levels = [0] * m
    speeds = _speeds(machine, levels)
    power = _power_tables(machine)
    core_ids = list(range(m))
    latency = machine.dvfs_latency_s
    slowest = [machine.ladder_of(c).slowest_index for c in range(m)]

    total_time = 0.0
    core_joules = 0.0
    running_joules = 0.0
    idle_joules = 0.0  # transition windows, billed at idle power
    tasks = 0
    dropped: frozenset[int] = frozenset()  # cores sitting at the slowest level
    # Steady-state memo: once the batch contents and the dropped set both
    # repeat, the whole batch repeats — the model's analog of fast-forward.
    memo_key: Optional[tuple[tuple[TaskSpec, ...], frozenset[int]]] = None
    memo_out: Optional[tuple[float, float, float, float, frozenset[int]]] = None
    for batch in program:
        tasks += len(batch.specs)
        if memo_key is not None and memo_key == (batch.specs, dropped):
            assert memo_out is not None
            makespan, d_core, d_run, d_idle, dropped = memo_out
            core_joules += d_core
            running_joules += d_run
            idle_joules += d_idle
            total_time += makespan
            continue
        d_core = d_run = d_idle = 0.0
        # A dropped core must raise back to F_0 before touching work: one
        # transition latency at idle power, then it pops at full speed.
        ready = {c: latency for c in dropped}
        _, finish, busy, _ = _pool_schedule(
            batch.specs,
            core_ids,
            speeds,
            machine.pop_cycles,
            machine.steal_cycles,
            ready=ready,
        )
        makespan = max(finish.values())
        dropped_next = set()
        for c in core_ids:
            start = ready.get(c, 0.0)
            if start:
                d_idle += power.idle[c] * start
            f = finish[c]
            busy_f0 = f - start  # back-to-back pops: no intra-schedule slack
            tail = makespan - f
            if tail > idle_grace_s:
                # Spin at F_0 through the grace window, transition at idle
                # power, spin at the slowest level until the barrier.
                trans = min(latency, tail - idle_grace_s)
                slow_spin = max(0.0, tail - idle_grace_s - trans)
                d_core += power.busy[c][0] * (busy_f0 + idle_grace_s)
                d_core += power.busy[c][slowest[c]] * slow_spin
                d_idle += power.idle[c] * trans
                dropped_next.add(c)
            else:
                d_core += power.busy[c][0] * (busy_f0 + tail)
            d_run += power.busy[c][0] * busy[c]
        memo_key = (batch.specs, dropped)
        dropped = frozenset(dropped_next)
        memo_out = (makespan, d_core, d_run, d_idle, dropped)
        core_joules += d_core
        running_joules += d_run
        idle_joules += d_idle
        total_time += makespan

    baseline = power.base_power * total_time
    core_total = core_joules + idle_joules
    return ModelResult(
        policy_name="cilk-d",
        total_time=total_time,
        total_joules=core_total + baseline,
        core_joules=core_total,
        baseline_joules=baseline,
        spin_joules=core_joules - running_joules,
        running_joules=running_joules,
        tasks_executed=tasks,
        batches_executed=len(program),
    )


# ----------------------------------------------------------------------
# eewa
# ----------------------------------------------------------------------


def _predict_eewa(
    program: Sequence[Batch],
    machine: MachineConfig,
    config,
) -> ModelResult:
    from repro.core.adjuster import WorkloadAwareFrequencyAdjuster
    from repro.core.cgroups import uniform_plan
    from repro.core.membound import MemoryBoundMode, classify_application
    from repro.core.profiler import OnlineProfiler

    m = machine.num_cores
    scale = machine.scale
    hetero = machine.is_heterogeneous
    power = _power_tables(machine)
    latency = machine.dvfs_latency_s
    profiler = OnlineProfiler(scale=scale, miss_threshold=config.miss_threshold)
    adjuster = WorkloadAwareFrequencyAdjuster(
        scale=scale,
        num_cores=m,
        search=config.search,
        cc_mode=config.cc_mode,
        headroom=config.headroom,
        leftover_policy=config.leftover_policy,
        capacities=machine.capacities(),
        overhead_model=config.overhead_model,
    )
    plan = uniform_plan(m, level=0)
    levels = [0] * m
    frozen = False
    search_failures = 0
    decisions = 0
    adjust_overhead = 0.0
    total_time = 0.0
    core_joules = 0.0
    running_joules = 0.0
    spin_joules = 0.0
    tasks = 0
    stats: dict[str, float] = {}
    #: (class-stats signature, ideal_time) -> decision; exact because the
    #: adjuster is a pure function of the profiled batch + ideal time.
    decision_memo: dict[Any, Any] = {}
    carry_ready: dict[int, float] = {}  # transition spilling into a batch

    # Whole-batch steady-state memo (the model's analog of fast-forward):
    # once the batch contents and the entire policy state entering a batch
    # repeat, the batch's contribution and exit state repeat exactly.
    # Valid for 0 < b < last: batch 0 pins the ideal time and the final
    # boundary bills its trailing window differently.
    prev_entry: Optional[tuple] = None
    prev_delta: Optional[tuple] = None

    last = len(program) - 1
    for b, batch in enumerate(program):
        tasks += len(batch.specs)
        entry = (
            batch.specs,
            tuple(levels),
            id(plan),
            frozen,
            search_failures,
            tuple(sorted(carry_ready.items())),
        )
        if 0 < b < last and prev_entry == entry:
            assert prev_delta is not None
            dt, d_core, d_run, d_spin, d_oh, d_dec, nxt = prev_delta
            total_time += dt
            core_joules += d_core
            running_joules += d_run
            spin_joules += d_spin
            adjust_overhead += d_oh
            decisions += d_dec
            levels, plan, frozen, search_failures, carry_ready = nxt
            continue
        snap = (
            total_time,
            core_joules,
            running_joules,
            spin_joules,
            adjust_overhead,
            decisions,
        )
        # -- run the batch: one list schedule per c-group ----------------
        speeds = _speeds(machine, levels)
        fastest_group = plan.fastest_group_index()
        by_group: dict[int, list[int]] = {}
        for i, spec in enumerate(batch.specs):
            g = plan.class_to_group.get(spec.function, fastest_group)
            by_group.setdefault(g, []).append(i)
        exec_seconds = [0.0] * len(batch.specs)
        assigned_core = [0] * len(batch.specs)
        makespan = 0.0
        running_by_core = {c: 0.0 for c in range(m)}
        for g, indices in sorted(by_group.items()):
            core_ids = list(plan.groups[g].core_ids)
            specs = [batch.specs[i] for i in indices]
            ready = {c: carry_ready[c] for c in core_ids if c in carry_ready}
            ex, finish, busy, assigned = _pool_schedule(
                specs,
                core_ids,
                speeds,
                machine.pop_cycles,
                machine.steal_cycles,
                ready=ready,
            )
            makespan = max(makespan, max(finish.values()))
            for j, i in enumerate(indices):
                exec_seconds[i] = ex[j]
                assigned_core[i] = assigned[j]
            for c, s in busy.items():
                running_by_core[c] += s
        # Every core is busy (running or spinning) at its level from its
        # ready offset to the barrier; a core still mid-transition at
        # launch idles through its carried offset first.
        for c in range(m):
            off = carry_ready.get(c, 0.0)
            if off:
                core_joules += power.idle[c] * off
            watts = power.busy[c][levels[c]]
            window = max(0.0, makespan - off)
            core_joules += watts * window
            running_joules += watts * running_by_core[c]
            spin_joules += watts * (window - running_by_core[c])
        carry_ready = {}
        total_time += makespan

        # -- profile: identical observations to the simulator ------------
        for i, spec in enumerate(batch.specs):
            c = assigned_core[i]
            profiler.observe(
                spec.function,
                exec_seconds[i],
                levels[c],
                spec.counters,
                machine.core_type_of(c) if hetero else None,
            )

        # -- boundary: mirror EEWAScheduler.on_batch_end exactly ----------
        if b == 0:
            profiler.set_ideal_time(makespan)
            verdict = classify_application(profiler)
            stats["memory_bound_fraction"] = verdict.memory_bound_fraction
            if (
                verdict.kind.value == "memory"
                and config.memory_bound_mode is MemoryBoundMode.FALLBACK
            ):
                frozen = True
                stats["fallback_memory_bound"] = 1.0
        if frozen or (b > 0 and not config.adapt_every_batch):
            profiler.reset_batch()
        else:
            classes = profiler.classes_by_workload()
            decision_key = (
                tuple((c.function, c.count, c.mean_workload) for c in classes),
                profiler.ideal_time,
            )
            decision = decision_memo.get(decision_key)
            if decision is None:
                decision = adjuster.decide(profiler)
                decision_memo[decision_key] = decision
            decisions += 1
            new_levels = list(decision.plan.core_levels)
            new_plan = decision.plan
            if decision.fallback_reason == "no feasible k-tuple":
                search_failures += 1
                if search_failures >= config.max_search_failures:
                    frozen = True
                    stats["fallback_search_failure"] = 1.0
                    new_plan = uniform_plan(m, level=0)
                    new_levels = [0] * m
            elif decision.fallback_reason is None:
                search_failures = 0
            profiler.reset_batch()

            overhead = decision.simulated_seconds
            adjust_overhead += overhead
            changed = {c for c in range(m) if new_levels[c] != levels[c]}
            if b == last:
                # Trailing window: the program ends before any transition
                # completes, so changed cores idle through the whole window
                # while unchanged cores spin busy (then everything parks).
                for c in range(m):
                    if c in changed:
                        core_joules += power.idle[c] * overhead
                    else:
                        watts = power.busy[c][levels[c]]
                        core_joules += watts * overhead
                        spin_joules += watts * overhead
            else:
                trans = min(latency, overhead)
                for c in range(m):
                    if c in changed:
                        core_joules += power.idle[c] * trans
                        watts = power.busy[c][new_levels[c]]
                        core_joules += watts * (overhead - trans)
                        spin_joules += watts * (overhead - trans)
                    else:
                        watts = power.busy[c][levels[c]]
                        core_joules += watts * overhead
                        spin_joules += watts * overhead
                if latency > overhead:
                    carry_ready = {c: latency - overhead for c in changed}
                levels = new_levels
                plan = new_plan
            total_time += overhead
        if 0 < b < last:
            prev_entry = entry
            prev_delta = (
                total_time - snap[0],
                core_joules - snap[1],
                running_joules - snap[2],
                spin_joules - snap[3],
                adjust_overhead - snap[4],
                decisions - snap[5],
                (levels, plan, frozen, search_failures, carry_ready),
            )
        else:
            prev_entry = None

    baseline = power.base_power * total_time
    return ModelResult(
        policy_name="eewa",
        total_time=total_time,
        total_joules=core_joules + baseline,
        core_joules=core_joules,
        baseline_joules=baseline,
        spin_joules=spin_joules,
        running_joules=running_joules,
        tasks_executed=tasks,
        batches_executed=len(program),
        adjust_overhead_seconds=adjust_overhead,
        adjuster_decisions=decisions,
        policy_stats=stats,
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def predict_cell(
    program: Sequence[Batch],
    policy: str,
    machine: MachineConfig,
    seed: int = 0,
    *,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Any = None,
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    faults: Any = None,
) -> Optional[ModelResult]:
    """Predict one cell analytically; ``None`` when the cell declines.

    Mirrors the argument surface of the simulation path
    (:func:`repro.experiments.parallel._simulate_cell`) so the sweep
    engine can hand either one the same cell. ``seed`` is accepted for
    symmetry: the prediction depends on it only through ``program``
    (which already carries the seed's jitter and drift).
    """
    del seed  # the program embodies the seed; the math is deterministic
    reason = decline_reason(
        program,
        policy,
        machine,
        core_levels=core_levels,
        eewa_config=eewa_config,
        policy_params=policy_params,
        faults=faults,
    )
    if reason is not None:
        return None
    from repro.scenario.registry import POLICIES

    name = POLICIES.canonical(policy)
    if name == "cilk":
        return _predict_cilk(program, machine, core_levels)
    if name == "cilk-d":
        from repro.runtime.cilk_d import DEFAULT_IDLE_GRACE_S

        params = dict(policy_params or ())
        grace = float(params.get("idle_grace_s", DEFAULT_IDLE_GRACE_S))
        return _predict_cilk_d(program, machine, grace)
    config = _resolve_eewa_config(eewa_config, policy_params)
    return _predict_eewa(program, machine, config)


__all__ = [
    "MODEL_POLICIES",
    "MODEL_VERSION",
    "ModelResult",
    "decline_reason",
    "model_key",
    "predict_cell",
]
