"""Real implementations of the Table II benchmark algorithms.

These are not simulations: every codec here is a working, round-trip-tested
implementation (BWT/BWC, simplified bzip2, DMC, JPEG-style encoding, LZW,
MD5, SHA-1). The simulator's benchmark workloads are calibrated from these
kernels' measured costs (:mod:`repro.kernels.profile`), so the per-class
workload imbalance that drives every EEWA result is grounded in real code.
"""

from repro.kernels.bitio import BitReader, BitWriter
from repro.kernels.bwt import (
    BWCBlock,
    BWTResult,
    bwc_compress,
    bwc_decompress,
    bwt_forward,
    bwt_inverse,
    suffix_array,
)
from repro.kernels.bzip2 import (
    Bzip2Block,
    Bzip2Stream,
    bzip2_compress,
    bzip2_decompress,
    compress_block,
    decompress_block,
)
from repro.kernels.dmc import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    DMCModel,
    dmc_compress,
    dmc_decompress,
)
from repro.kernels.huffman import (
    HuffmanTable,
    canonical_codes,
    code_lengths,
    huffman_compress,
    huffman_decompress,
)
from repro.kernels.jpeg import (
    JpegImage,
    jpeg_decode,
    jpeg_encode,
    quant_table,
    zigzag_order,
)
from repro.kernels.lzw import lzw_compress, lzw_decompress
from repro.kernels.md5 import MD5, md5_digest, md5_hexdigest
from repro.kernels.mtf import mtf_decode, mtf_encode
from repro.kernels.profile import (
    REFERENCE_COSTS,
    KernelStage,
    measure_kernel_costs,
    reference_stages,
)
from repro.kernels.rle import (
    rle2_decode_zeros,
    rle2_encode_zeros,
    rle_decode,
    rle_encode,
)
from repro.kernels.sha1 import SHA1, sha1_digest, sha1_hexdigest

__all__ = [
    "ArithmeticDecoder",
    "ArithmeticEncoder",
    "BWCBlock",
    "BWTResult",
    "BitReader",
    "BitWriter",
    "Bzip2Block",
    "Bzip2Stream",
    "DMCModel",
    "HuffmanTable",
    "JpegImage",
    "KernelStage",
    "MD5",
    "REFERENCE_COSTS",
    "SHA1",
    "bwc_compress",
    "bwc_decompress",
    "bwt_forward",
    "bwt_inverse",
    "bzip2_compress",
    "bzip2_decompress",
    "canonical_codes",
    "code_lengths",
    "compress_block",
    "decompress_block",
    "dmc_compress",
    "dmc_decompress",
    "huffman_compress",
    "huffman_decompress",
    "jpeg_decode",
    "jpeg_encode",
    "lzw_compress",
    "lzw_decompress",
    "md5_digest",
    "md5_hexdigest",
    "measure_kernel_costs",
    "mtf_decode",
    "mtf_encode",
    "quant_table",
    "reference_stages",
    "rle2_decode_zeros",
    "rle2_encode_zeros",
    "rle_decode",
    "rle_encode",
    "sha1_digest",
    "sha1_hexdigest",
    "suffix_array",
    "zigzag_order",
]
