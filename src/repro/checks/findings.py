"""The shared finding model every check engine reports through.

A :class:`Finding` is one defect at one location: the lint engines anchor it
to a ``file:line``, the invariant model checker to a ``(r, k, m)``
configuration string, the race detector to a policy/seed/task triple. The
reporters render a finding list as human-readable text or as JSON for CI
tooling; :func:`exit_code` turns a list into the process exit status the
``repro check`` command contracts to.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail ``repro check`` unconditionally; ``WARNING``
    findings fail only under ``--strict``.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One defect reported by a check engine.

    Attributes
    ----------
    check:
        Engine that produced the finding (``"lint"``, ``"invariants"``,
        ``"races"``).
    rule_id:
        Stable identifier (``EEWA001``...) usable in suppression comments.
    severity:
        :class:`Severity` of the finding.
    location:
        Where the defect is: a file path for lint, a configuration
        descriptor for the model checker, a policy/seed label for the race
        detector.
    message:
        Human-readable description of the defect.
    line:
        1-based line number for file-anchored findings, 0 otherwise.
    column:
        1-based column for file-anchored findings, 0 otherwise.
    """

    check: str
    rule_id: str
    severity: Severity
    location: str
    message: str
    line: int = 0
    column: int = 0

    def anchor(self) -> str:
        """``path:line:col`` for files, the bare location otherwise."""
        if self.line:
            return f"{self.location}:{self.line}:{self.column}"
        return self.location


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Stable display order: errors first, then by location and line."""
    return sorted(
        findings,
        key=lambda f: (f.severity is not Severity.ERROR, f.check, f.location, f.line, f.rule_id),
    )


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary tail."""
    lines = [
        f"{f.anchor()}: {f.severity.value} {f.rule_id} [{f.check}] {f.message}"
        for f in sort_findings(findings)
    ]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)"
        if findings
        else "no findings"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: ``{"findings": [...], "summary": {...}}``."""
    payload = {
        "findings": [
            {**asdict(f), "severity": f.severity.value} for f in sort_findings(findings)
        ],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        },
    }
    return json.dumps(payload, indent=2)


def exit_code(findings: Sequence[Finding], *, strict: bool = False) -> int:
    """0 = clean, 1 = findings above the threshold.

    Non-strict runs fail only on :class:`Severity.ERROR`; ``--strict`` fails
    on anything.
    """
    if strict:
        return 1 if findings else 0
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0
