"""Deterministic discrete-event simulation engine."""

from repro.sim.engine import DEFAULT_MAX_EVENTS, SimResult, Simulator, simulate
from repro.sim.export import (
    batches_to_csv,
    result_to_dict,
    result_to_json,
    tasks_to_csv,
    transitions_to_csv,
)
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.rng import RngStreams, derive_seed
from repro.sim.trace import BatchTrace, DvfsTransition, TraceRecorder

__all__ = [
    "BatchTrace",
    "batches_to_csv",
    "result_to_dict",
    "result_to_json",
    "tasks_to_csv",
    "transitions_to_csv",
    "DEFAULT_MAX_EVENTS",
    "DvfsTransition",
    "Event",
    "EventKind",
    "EventQueue",
    "RngStreams",
    "SimResult",
    "Simulator",
    "TraceRecorder",
    "derive_seed",
    "simulate",
]
