"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments.report import bar_chart, frequency_timeline, grouped_bar_chart


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 0.5], width=4)
        lines = out.splitlines()
        assert lines[0] == "a   #### 1.000"
        assert lines[1] == "bb  ##   0.500"

    def test_title(self):
        out = bar_chart(["x"], [2.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_max_value_scaling(self):
        out = bar_chart(["x"], [1.0], width=10, max_value=2.0)
        assert out.count("#") == 5

    def test_zero_values(self):
        out = bar_chart(["x"], [0.0], width=10)
        assert "#" not in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"


class TestGroupedBarChart:
    def test_series_render(self):
        out = grouped_bar_chart(
            ["b1"], {"cilk": [1.0], "eewa": [0.7]}, width=10
        )
        lines = out.splitlines()
        assert len(lines) == 2
        assert "cilk" in lines[0] and "eewa" in lines[1]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 7

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {})


class TestFrequencyTimeline:
    def test_fig8_shape(self):
        hists = [(4, 0), (1, 3), (1, 3)]
        out = frequency_timeline(hists, [2.0, 1.0])
        lines = out.splitlines()
        assert lines[0] == "core  0 | 0 0 0"
        assert lines[3] == "core  3 | 0 1 1"
        assert "levels: 0=2.0GHz, 1=1.0GHz" in out

    def test_empty(self):
        assert frequency_timeline([], [2.0], title="t") == "t"
