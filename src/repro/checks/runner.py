"""Orchestration and CLI for the checks subsystem.

``repro check`` (and ``python -m repro.checks``) runs up to three engines —
AST lint, the scheduler-invariant model checker, and the trace race
detector — collects their findings into one report, and exits:

* ``0`` — clean (non-strict runs ignore warnings);
* ``1`` — findings at or above the failing threshold;
* ``2`` — the checker itself could not run (bad paths, internal error).

``--changed-only`` scopes the run for pre-commit latency: lint covers only
files changed versus ``HEAD``, the model checker runs only when scheduler
math changed, the race battery only when runtime/sim code changed.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.checks.findings import (
    Finding,
    exit_code,
    render_json,
    render_text,
)
from repro.checks.invariants import check_invariants
from repro.checks.lint import lint_paths
from repro.checks.races import DEFAULT_RACE_SEEDS, check_shipped_policies

#: Directories whose changes trigger the model checker under --changed-only.
_INVARIANT_TRIGGERS = ("repro/core/", "repro/checks/invariants")
#: Directories whose changes trigger the race battery under --changed-only.
_RACE_TRIGGERS = ("repro/runtime/", "repro/sim/", "repro/checks/races")


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor containing ``.git``, else the start directory."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current, *current.parents]:
        if (candidate / ".git").exists():
            return candidate
    return current


def changed_python_files(root: Path) -> Optional[list[Path]]:
    """Files changed vs HEAD plus untracked ones; ``None`` if git fails."""
    files: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            out = subprocess.run(
                args, cwd=root, capture_output=True, text=True, check=True
            ).stdout
        except (OSError, subprocess.CalledProcessError):
            return None
        files.update(line.strip() for line in out.splitlines() if line.strip())
    return sorted(
        root / f for f in files if f.endswith(".py") and (root / f).exists()
    )


def run_checks(
    paths: Sequence[Path],
    *,
    root: Path,
    lint: bool = True,
    invariants: bool = True,
    races: bool = True,
    race_seeds: Sequence[int] = DEFAULT_RACE_SEEDS,
) -> list[Finding]:
    """Run the selected engines and pool their findings."""
    findings: list[Finding] = []
    if lint:
        findings.extend(lint_paths(paths, root=root))
    if invariants:
        findings.extend(check_invariants())
    if races:
        findings.extend(check_shipped_policies(seeds=race_seeds))
    return findings


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Determinism lint, scheduler-invariant model checking, and "
            "trace race detection for the EEWA reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings as well as errors",
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the AST lint engine"
    )
    parser.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the scheduler-invariant model checker",
    )
    parser.add_argument(
        "--no-races",
        action="store_true",
        help="skip the shipped-policy race-detection battery",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "lint only files changed vs HEAD; run the other engines only "
            "when their subject code changed (pre-commit mode)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    root = find_repo_root()

    lint = not args.no_lint
    invariants = not args.no_invariants
    races = not args.no_races

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"repro check: no such path(s): {', '.join(map(str, missing))}",
                file=sys.stderr,
            )
            return 2
    else:
        default = root / "src" / "repro"
        if not default.exists():
            print(
                f"repro check: default lint target {default} does not exist; "
                "pass explicit paths",
                file=sys.stderr,
            )
            return 2
        paths = [default]

    if args.changed_only:
        changed = changed_python_files(root)
        if changed is None:
            print(
                "repro check: --changed-only requires git; running full checks",
                file=sys.stderr,
            )
        else:
            rels = [p.resolve().as_posix() for p in changed]
            paths = list(changed)
            lint = lint and bool(paths)
            invariants = invariants and any(
                t in r for r in rels for t in _INVARIANT_TRIGGERS
            )
            races = races and any(t in r for r in rels for t in _RACE_TRIGGERS)

    findings = run_checks(
        paths,
        root=root,
        lint=lint,
        invariants=invariants,
        races=races,
    )
    report = render_json(findings) if args.fmt == "json" else render_text(findings)
    print(report)
    return exit_code(findings, strict=args.strict)
