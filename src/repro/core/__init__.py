"""EEWA core: profiler, CC table, k-tuple search, adjuster, scheduler."""

from repro.core.adjuster import (
    AdjusterDecision,
    OverheadModel,
    WorkloadAwareFrequencyAdjuster,
)
from repro.core.cc_table import CCTable, build_cc_table, cc_table_from_values
from repro.core.cgroups import (
    CGroup,
    CGroupPlan,
    LEFTOVER_POLICIES,
    build_cgroup_plan,
    uniform_plan,
)
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.core.ktuple import (
    KTupleSolution,
    default_power_estimate,
    exhaustive_search,
    power_model_estimate,
    search_ktuple,
)
from repro.core.membound import (
    ApplicationClassification,
    BoundKind,
    MemoryBoundMode,
    classify_application,
    classify_task,
)
from repro.core.preference import preference_lists, preference_order
from repro.core.profiler import (
    DEFAULT_MISS_THRESHOLD,
    OnlineProfiler,
    TaskClassStats,
)
from repro.core.regression import (
    FrequencyTimeModel,
    RegressionProfiler,
    build_regression_cc_table,
    fit_frequency_time_model,
)

__all__ = [
    "AdjusterDecision",
    "ApplicationClassification",
    "BoundKind",
    "CCTable",
    "CGroup",
    "CGroupPlan",
    "DEFAULT_MISS_THRESHOLD",
    "EEWAConfig",
    "EEWAScheduler",
    "FrequencyTimeModel",
    "KTupleSolution",
    "LEFTOVER_POLICIES",
    "MemoryBoundMode",
    "OnlineProfiler",
    "OverheadModel",
    "RegressionProfiler",
    "TaskClassStats",
    "WorkloadAwareFrequencyAdjuster",
    "build_cc_table",
    "build_cgroup_plan",
    "build_regression_cc_table",
    "cc_table_from_values",
    "classify_application",
    "classify_task",
    "default_power_estimate",
    "exhaustive_search",
    "fit_frequency_time_model",
    "power_model_estimate",
    "preference_lists",
    "preference_order",
    "search_ktuple",
    "uniform_plan",
]
