"""Simulated machine substrate: frequencies, power, cores, energy.

This package replaces the paper's physical testbed (four quad-core AMD
Opteron 8380 processors with per-core DVFS, measured at the wall with a
power meter) with an analytically-modelled machine that exposes exactly the
knobs the EEWA scheduler manipulates: per-core discrete frequencies, power
that rises superlinearly with frequency, and energy metering over time.
"""

from repro.machine.counters import PerfCounters, ZERO_MISS_COUNTERS
from repro.machine.core import BUSY_STATES, CoreState, SimCore
from repro.machine.energy import CoreEnergyAccount, EnergyMeter
from repro.machine.frequency import (
    GHZ,
    FrequencyScale,
    opteron_8380_scale,
    uniform_scale,
)
from repro.machine.power import PowerModel, VoltageCurve, calibrated_power_model
from repro.machine.topology import (
    MachineConfig,
    opteron_8380_machine,
    small_test_machine,
)

__all__ = [
    "BUSY_STATES",
    "CoreEnergyAccount",
    "CoreState",
    "EnergyMeter",
    "FrequencyScale",
    "GHZ",
    "MachineConfig",
    "PerfCounters",
    "PowerModel",
    "SimCore",
    "VoltageCurve",
    "ZERO_MISS_COUNTERS",
    "calibrated_power_model",
    "opteron_8380_machine",
    "opteron_8380_scale",
    "small_test_machine",
    "uniform_scale",
]
