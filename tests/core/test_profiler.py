"""Tests for the online profiler (Eq. 1 and task-class statistics)."""

import pytest

from repro.core.profiler import OnlineProfiler, TaskClassStats
from repro.errors import ProfilingError
from repro.machine.counters import PerfCounters
from repro.machine.frequency import opteron_8380_scale


@pytest.fixture
def profiler() -> OnlineProfiler:
    return OnlineProfiler(scale=opteron_8380_scale())


class TestEquationOne:
    def test_fastest_level_identity(self, profiler):
        """At F_0 the normalised workload equals the raw time."""
        assert profiler.normalized_workload(0.5, 0) == pytest.approx(0.5)

    def test_slow_level_discounts_time(self, profiler):
        """w = t * F_i / F_0: a slow core's long runtime maps back to the
        work it represents at full speed."""
        # A task of 1.0s at 0.8 GHz did 0.32s worth of F_0 work.
        assert profiler.normalized_workload(1.0, 3) == pytest.approx(0.8 / 2.5)

    def test_roundtrip_with_execution_model(self, profiler):
        """A CPU-bound task measured on any level normalises identically."""
        cycles = 1.0e9
        scale = opteron_8380_scale()
        workloads = [
            profiler.normalized_workload(cycles / scale[j], j) for j in range(scale.r)
        ]
        for w in workloads[1:]:
            assert w == pytest.approx(workloads[0])

    def test_negative_time_rejected(self, profiler):
        with pytest.raises(ProfilingError):
            profiler.normalized_workload(-1.0, 0)


class TestTaskClasses:
    def test_running_mean_update(self, profiler):
        """The paper's incremental update TC(f, n+1, (n*w + w)/(n+1))."""
        profiler.observe("f", 0.1, 0)
        profiler.observe("f", 0.3, 0)
        stats = profiler.get_class("f")
        assert stats.count == 2
        assert stats.mean_workload == pytest.approx(0.2)
        assert stats.total_workload == pytest.approx(0.4)

    def test_new_class_created_on_first_observation(self, profiler):
        assert profiler.get_class("f") is None
        profiler.observe("f", 0.1, 0)
        assert isinstance(profiler.get_class("f"), TaskClassStats)

    def test_classes_sorted_heaviest_first(self, profiler):
        profiler.observe("small", 0.1, 0)
        profiler.observe("big", 0.5, 0)
        profiler.observe("mid", 0.3, 0)
        names = [c.function for c in profiler.classes_by_workload()]
        assert names == ["big", "mid", "small"]

    def test_sort_tie_broken_by_name(self, profiler):
        profiler.observe("b", 0.2, 0)
        profiler.observe("a", 0.2, 0)
        names = [c.function for c in profiler.classes_by_workload()]
        assert names == ["a", "b"]

    def test_reset_batch_clears_classes_keeps_ideal_time(self, profiler):
        profiler.observe("f", 0.1, 0)
        profiler.set_ideal_time(1.0)
        profiler.reset_batch()
        assert not profiler.has_classes()
        assert profiler.tasks_seen == 0
        assert profiler.require_ideal_time() == 1.0


class TestIdealTime:
    def test_unset_raises(self, profiler):
        with pytest.raises(ProfilingError):
            profiler.require_ideal_time()

    def test_nonpositive_rejected(self, profiler):
        with pytest.raises(ProfilingError):
            profiler.set_ideal_time(0.0)


class TestMemoryBoundness:
    def test_high_miss_tasks_counted(self, profiler):
        hot = PerfCounters(retired_instructions=1000, cache_misses=100)
        cold = PerfCounters(retired_instructions=1000, cache_misses=1)
        profiler.observe("a", 0.1, 0, hot)
        profiler.observe("b", 0.1, 0, cold)
        assert profiler.memory_bound_fraction() == pytest.approx(0.5)
        assert not profiler.application_is_memory_bound()
        profiler.observe("c", 0.1, 0, hot)
        assert profiler.application_is_memory_bound()

    def test_no_counters_means_cpu_bound(self, profiler):
        profiler.observe("a", 0.1, 0)
        assert profiler.memory_bound_fraction() == 0.0

    def test_class_accumulates_counters(self, profiler):
        c = PerfCounters(retired_instructions=100, cache_misses=5)
        profiler.observe("a", 0.1, 0, c)
        profiler.observe("a", 0.1, 0, c)
        stats = profiler.get_class("a")
        assert stats.instructions == 200
        assert stats.cache_misses == 10
        assert stats.miss_intensity == pytest.approx(0.05)
