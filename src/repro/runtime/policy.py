"""Scheduler policy interface.

A :class:`SchedulerPolicy` owns task placement and acquisition; the
discrete-event engine owns time, core states, DVFS mechanics, and energy.
The split mirrors the paper's architecture: MIT Cilk's scheduler was
modified, the hardware wasn't.

The engine drives a policy through a narrow contract:

* ``on_program_start`` / ``on_batch_start`` / ``on_task_complete`` /
  ``on_batch_end`` — lifecycle notifications;
* ``next_action(core_id)`` — called whenever a core is free; returns a
  :class:`RunTask`, :class:`SetFrequency` (switch P-state, then ask again),
  or :class:`Wait` (nothing stealable: spin until new work appears).

Policies talk back through :class:`RuntimeContext` (implemented by the
engine) for time, frequency control and RNG streams.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

from repro.machine.topology import MachineConfig
from repro.runtime.task import Batch, Task


@dataclass(frozen=True)
class RunTask:
    """Execute ``task`` on the requesting core.

    ``acquire_cycles`` is the scheduling cost paid before execution starts
    (local pop vs remote steal), charged at the core's current frequency.
    """

    task: Task
    acquire_cycles: float = 0.0


@dataclass(frozen=True)
class SetFrequency:
    """Switch the requesting core to ``level`` and then ask again.

    Used by Cilk-D to drop an idle core to the lowest frequency and to
    restore it when work shows up.
    """

    level: int


@dataclass(frozen=True)
class Wait:
    """No runnable work anywhere this core may look.

    ``scan_cycles`` is the cost of the failed victim scan, billed before the
    core settles into its spin-wait. The core spins (at full power for its
    current frequency) until the engine wakes it — or, if ``retry_after``
    is set, until that many seconds pass, whichever is first. Timed retries
    let policies implement reaction delays (e.g. Cilk-D's idle-detection
    grace period) without an engine-side timer API.
    """

    scan_cycles: float = 0.0
    retry_after: Optional[float] = None


Action = RunTask | SetFrequency | Wait


@dataclass(frozen=True)
class BatchAdjustment:
    """What a policy wants done between batches.

    Parameters
    ----------
    frequency_levels:
        Optional per-core target DVFS levels, ``len == num_cores``; ``None``
        entries leave a core untouched.
    overhead_seconds:
        Simulated time consumed by the adjustment decision itself (e.g. the
        backtracking search), inserted before the next batch launches. This
        is what Table III reports.
    """

    frequency_levels: Optional[Sequence[Optional[int]]] = None
    overhead_seconds: float = 0.0


class RuntimeContext(Protocol):
    """Engine services available to policies."""

    @property
    def machine(self) -> MachineConfig: ...

    def now(self) -> float: ...

    def core_level(self, core_id: int) -> int:
        """Current *effective* DVFS level of a core."""
        ...

    def requested_level(self, core_id: int) -> int:
        """The level the core last requested (may be pinned faster by a
        shared DVFS domain)."""
        ...

    def rng_choice(self, stream: str, options: Sequence[int]) -> int:
        """Deterministic random choice from a named stream."""
        ...

    def rng_shuffled(self, stream: str, options: Sequence[int]) -> list[int]:
        """Deterministic random permutation from a named stream."""
        ...

    # The tracing hooks below are optional: policies access them through
    # ``getattr`` so scripted test contexts that predate them keep working.

    def pool_observer(self):  # -> Optional[PoolObserver]
        """Pool-event sink for deep tracing; ``None`` when not recording."""
        ...

    def trace_plan(
        self, group_of_core: Sequence[int], group_levels: Sequence[int]
    ) -> None:
        """Record a c-group plan installation for the race detector."""
        ...


@dataclass
class PolicyStats:
    """Counters every policy accumulates (checked by conservation tests)."""

    tasks_executed: int = 0
    tasks_stolen: int = 0
    local_pops: int = 0
    failed_scans: int = 0
    cross_group_steals: int = 0
    extra: dict[str, float] = field(default_factory=dict)


class SchedulerPolicy(abc.ABC):
    """Base class for Cilk, Cilk-D, WATS and EEWA policies."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.ctx: Optional[RuntimeContext] = None
        self.stats = PolicyStats()

    # -- lifecycle ----------------------------------------------------------

    def bind(self, ctx: RuntimeContext) -> None:
        """Attach the engine context. Called once before the program starts."""
        self.ctx = ctx

    def on_program_start(self) -> BatchAdjustment | None:
        """Called before the first batch. May set initial frequencies."""
        return None

    @abc.abstractmethod
    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        """Place the batch's root tasks into pools."""

    @abc.abstractmethod
    def next_action(self, core_id: int) -> Action:
        """Decide what the free core ``core_id`` does next."""

    def on_spawn(self, core_id: int, task: Task) -> None:
        """Place a task spawned mid-execution. Default: no support needed."""
        raise NotImplementedError(f"{self.name} does not support nested spawns")

    def on_task_complete(self, core_id: int, task: Task) -> None:
        """Observe a completed task (profiling hook)."""

    def on_dvfs_denied(self, core_id: int, level: int) -> None:
        """The platform denied this policy's DVFS request (fault injection).

        ``level`` is the level that was requested and refused; the core
        stays at its previous frequency. The default just counts the
        denial — any policy is already correct under denial because the
        engine keeps the core schedulable — but policies that *plan*
        around frequency (EEWA) override this to degrade gracefully.
        """
        self.stats.extra["dvfs_denied"] = (
            self.stats.extra.get("dvfs_denied", 0.0) + 1.0
        )

    def on_batch_end(self, batch_index: int) -> BatchAdjustment | None:
        """Batch barrier reached; optionally adjust frequencies (EEWA)."""
        return None

    def on_program_end(self) -> None:
        """Program finished; final bookkeeping."""

    def state_fingerprint(self) -> Optional[str]:
        """Digest of all *decision-relevant* policy state, or ``None``.

        The engine's steady-state fast-forward compares this digest at
        batch boundaries: two boundaries with equal fingerprints (and equal
        engine-side state) must make byte-identical decisions for identical
        batches. Returning ``None`` — the default — declares the policy
        opaque and disables fast-forward entirely, which is always sound.

        Implementations must cover every piece of state that influences
        future actions (installed plans, round-robin cursors, residual
        pooled tasks, profiler accumulators) and must *exclude* grow-only
        bookkeeping (stats counters, decision logs) that never feeds back
        into scheduling. An unsound fingerprint is caught loudly by the
        ``fast_forward_parity`` conformance check.
        """
        return None

    # -- shared helpers -------------------------------------------------------

    def _require_ctx(self) -> RuntimeContext:
        if self.ctx is None:
            raise RuntimeError(f"policy {self.name} used before bind()")
        return self.ctx
