"""Tests for the analytic companion model (``repro.model``).

Eligibility/decline taxonomy, prediction accuracy against the simulator
on in-envelope cells, determinism, and the envelope guards that keep the
model honest (rotation-sensitive mixed-speed schedules, heterogeneous
machines, faults).
"""

import pickle

import pytest

from repro.machine.topology import (
    big_little_test_machine,
    dyadic_test_machine,
    opteron_8380_machine,
)
from repro.model import (
    MAX_RELATIVE_ERROR,
    MODEL_VERSION,
    classify_cell,
    decline_reason,
    model_key,
    predict_cell,
)
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program
from repro.workloads.periodic import periodic_program


def _policy(name, **kwargs):
    from repro.experiments.runner import make_policy

    return make_policy(name, **kwargs)


@pytest.fixture(scope="module")
def dyadic():
    return dyadic_test_machine(num_cores=8)


@pytest.fixture(scope="module")
def periodic120():
    return tuple(periodic_program(120))


class TestDeclines:
    def test_unknown_policy(self, dyadic, periodic120):
        reason = decline_reason(periodic120, "nonesuch", dyadic)
        assert reason is not None and "nonesuch" in reason

    def test_wats_has_no_analytic_form(self, dyadic, periodic120):
        assert decline_reason(periodic120, "wats", dyadic) is not None

    def test_faults_decline(self, dyadic, periodic120):
        assert decline_reason(
            periodic120, "cilk", dyadic, faults=object()
        ) is not None
        assert predict_cell(
            periodic120, "cilk", dyadic, faults=object()
        ) is None

    def test_eligible_cell_has_no_reason(self, dyadic, periodic120):
        assert decline_reason(periodic120, "cilk", dyadic) is None
        assert decline_reason(periodic120, "eewa", dyadic) is None


class TestEligibility:
    def test_heterogeneous_machine_ineligible(self, periodic120):
        verdict = classify_cell(
            periodic120, "cilk", big_little_test_machine()
        )
        assert not verdict
        assert verdict.reason

    def test_small_batches_ineligible(self, dyadic):
        # 3 tasks per batch on 8 cores: steal noise unamortised.
        program = tuple(periodic_program(10, 1, 2))
        assert not classify_cell(program, "cilk", dyadic)

    def test_periodic_eligible(self, dyadic, periodic120):
        verdict = classify_cell(periodic120, "cilk", dyadic)
        assert verdict
        assert verdict.reason is None


class TestAccuracy:
    @pytest.mark.parametrize("policy", ["cilk", "cilk-d", "eewa"])
    def test_periodic_within_bounds(self, dyadic, periodic120, policy):
        model = predict_cell(periodic120, policy, dyadic)
        assert model is not None
        sim = simulate(list(periodic120), _policy(policy), dyadic, seed=0)
        assert model.total_time == pytest.approx(
            sim.total_time, rel=MAX_RELATIVE_ERROR
        )
        assert model.total_joules == pytest.approx(
            sim.total_joules, rel=MAX_RELATIVE_ERROR
        )

    def test_golden_benchmark_within_bounds(self):
        machine = opteron_8380_machine()
        program = tuple(benchmark_program("SHA-1", batches=10, seed=11))
        model = predict_cell(program, "cilk", machine)
        assert model is not None
        sim = simulate(list(program), _policy("cilk"), machine, seed=11)
        assert model.total_time == pytest.approx(
            sim.total_time, rel=MAX_RELATIVE_ERROR
        )
        assert model.total_joules == pytest.approx(
            sim.total_joules, rel=MAX_RELATIVE_ERROR
        )


class TestDeterminism:
    def test_prediction_is_seed_independent(self, dyadic, periodic120):
        a = predict_cell(periodic120, "eewa", dyadic, 0)
        b = predict_cell(periodic120, "eewa", dyadic, 12345)
        assert a == b

    def test_prediction_is_reproducible(self, dyadic, periodic120):
        a = predict_cell(periodic120, "cilk-d", dyadic)
        b = predict_cell(periodic120, "cilk-d", dyadic)
        assert a == b

    def test_result_pickles(self, dyadic, periodic120):
        result = predict_cell(periodic120, "eewa", dyadic)
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result


class TestRotationGuard:
    """Mixed per-core speeds can make the engine's seed-dependent task
    placement change the makespan; the model must refuse to guess."""

    MIXED = (0, 0, 0, 0, 1, 1, 1, 1)

    def test_rotation_dependent_schedule_declines(self, dyadic):
        # 6 heavy tasks cannot all fit the 4 fast cores: the rotation
        # decides which slow core eats heavy work, and the simulated
        # makespan genuinely varies with the seed.
        program = tuple(periodic_program(4, 6, 6))
        assert predict_cell(
            program, "cilk", dyadic, core_levels=self.MIXED
        ) is None

    def test_rotation_invariant_mixed_levels_predict(self, dyadic):
        # 4 heavy tasks rebalance through steals whatever the rotation;
        # the prediction stands and stays within bounds for every seed.
        program = tuple(periodic_program(4, 4, 8))
        model = predict_cell(program, "cilk", dyadic, core_levels=self.MIXED)
        assert model is not None
        for seed in (0, 3, 11):
            sim = simulate(
                list(program),
                _policy("cilk", core_levels=self.MIXED),
                dyadic,
                seed=seed,
            )
            assert model.total_time == pytest.approx(
                sim.total_time, rel=MAX_RELATIVE_ERROR
            )

    def test_uniform_levels_never_decline(self, dyadic):
        program = tuple(periodic_program(4, 6, 6))
        assert predict_cell(
            program, "cilk", dyadic, core_levels=(1,) * 8
        ) is not None


class TestModelKey:
    def test_model_key_differs_from_sim_key(self):
        assert model_key("a" * 64) != "a" * 64

    def test_model_key_is_deterministic_per_sim_key(self):
        assert MODEL_VERSION  # non-empty version string feeds the key
        assert model_key("a" * 64) == model_key("a" * 64)
        assert model_key("a" * 64) != model_key("b" * 64)
