"""Operating points: the (core type, frequency) generalisation of a ladder.

The paper's machine is homogeneous — one DVFS ladder shared by identical
cores — so every layer of the reproduction historically indexed scheduler
state by a bare frequency level. Heterogeneous machines (big.LITTLE-style
composite cores, and eventually multi-socket domains) break that: two core
types may share an electrical frequency yet deliver different throughput
and draw different power.

An :class:`OperatingPoint` is one (core type, frequency) pair with an
IPC-scaling factor; its *effective* speed is ``frequency * ipc_scale`` —
the rate at which it retires reference cycles. An
:class:`OperatingPointSpace` is the ordered set of all operating points of
a machine, sorted by descending effective speed (ties broken by core-type
declaration order), and provides exactly the index arithmetic
(``slowdown`` / ``relative_speed`` / ``validate_index``) the CC table and
the k-tuple search were already built on — so the scheduler math
generalises by swapping the index set, not the formulas.

A homogeneous machine is the one-type special case: every helper that
consumes an operating-point space behaves bit-identically to the old
flat-ladder code when the space holds a single core type with
``ipc_scale == 1.0`` (multiplying by 1.0 is an IEEE-754 identity), which
is what keeps the golden traces pinned across the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ConfigurationError

#: The core type used when none is declared — the homogeneous case.
DEFAULT_CORE_TYPE = "core"


@dataclass(frozen=True)
class OperatingPoint:
    """One (core type, frequency) pair a core can run at.

    Parameters
    ----------
    core_type:
        Name of the core type ("core" for homogeneous machines, "big" /
        "little" for composite-core machines).
    frequency:
        Electrical frequency in hertz. Power draw depends on this (and the
        type's voltage curve / kappa), never on the effective speed.
    ipc_scale:
        Relative instructions-per-cycle of this core type against the
        reference type (1.0 = reference). Execution time of a task of
        ``c`` reference cycles is ``c / (ipc_scale * frequency)``.
    """

    core_type: str
    frequency: float
    ipc_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.core_type:
            raise ConfigurationError("an operating point needs a core type name")
        if self.frequency <= 0.0:
            raise ConfigurationError(
                f"frequencies must be positive, got {self.frequency!r}"
            )
        if self.ipc_scale <= 0.0:
            raise ConfigurationError(
                f"ipc_scale must be positive, got {self.ipc_scale!r}"
            )

    @property
    def effective_hz(self) -> float:
        """Reference cycles retired per second at this point."""
        return self.frequency * self.ipc_scale


@dataclass(frozen=True)
class OperatingPointSpace:
    """The ordered set of all operating points of a machine.

    Points are ordered by *descending effective speed*; index 0 is the
    fastest operating point of the whole machine (the Eq.-1 normalisation
    reference), index ``r - 1`` the slowest. Cross-type effective-speed
    ties keep core-type declaration order, so the ordering — and every
    digest derived from it — is deterministic.

    The flat-ladder API (``levels`` / ``slowdown`` / ``relative_speed`` /
    ``validate_index`` / iteration over frequencies) is preserved so the
    CC table and search code consume a space exactly as they consumed a
    :class:`~repro.machine.frequency.FrequencyScale`; the additions are
    the per-type views: :meth:`ladder`, :meth:`index_for`,
    :meth:`core_type_of`, :meth:`type_level_of`.
    """

    points: tuple[OperatingPoint, ...] = field()

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        points = tuple(points)
        if not points:
            raise ConfigurationError(
                "an operating-point space needs at least one point"
            )
        type_order: list[str] = []
        for p in points:
            if p.core_type not in type_order:
                type_order.append(p.core_type)
        rank = {t: i for i, t in enumerate(type_order)}
        keys = [(-p.effective_hz, rank[p.core_type]) for p in points]
        if any(a > b for a, b in zip(keys, keys[1:])):
            raise ConfigurationError(
                "operating points must be ordered by descending effective "
                "speed (ties in core-type declaration order), got "
                f"{[(p.core_type, p.frequency) for p in points]}"
            )
        seen: set[tuple[str, float]] = set()
        for p in points:
            key = (p.core_type, p.frequency)
            if key in seen:
                raise ConfigurationError(
                    f"duplicate operating point {key} in space"
                )
            seen.add(key)
        ipc_by_type: dict[str, float] = {}
        for p in points:
            ipc = ipc_by_type.setdefault(p.core_type, p.ipc_scale)
            if ipc != p.ipc_scale:
                raise ConfigurationError(
                    f"core type {p.core_type!r} declares conflicting "
                    f"ipc_scale values {ipc!r} and {p.ipc_scale!r}"
                )
        object.__setattr__(self, "points", points)
        self._init_caches()

    def _init_caches(self) -> None:
        # Derived views, stored as NON-field attributes: invisible to the
        # canonical dataclass encoding (digests hash ``points`` alone) and
        # rebuilt by ``dataclasses.replace`` through ``__init__``.
        points = self.points
        object.__setattr__(
            self, "_levels", tuple(p.frequency for p in points)
        )
        object.__setattr__(
            self, "_effective", tuple(p.effective_hz for p in points)
        )
        types: list[str] = []
        for p in points:
            if p.core_type not in types:
                types.append(p.core_type)
        object.__setattr__(self, "_types", tuple(types))
        index_for: dict[tuple[str, int], int] = {}
        type_level: list[int] = []
        counts: dict[str, int] = {}
        for i, p in enumerate(points):
            level = counts.get(p.core_type, 0)
            counts[p.core_type] = level + 1
            index_for[(p.core_type, level)] = i
            type_level.append(level)
        object.__setattr__(self, "_index_for", index_for)
        object.__setattr__(self, "_type_levels", tuple(type_level))
        object.__setattr__(self, "_ladders", {})

    def __setstate__(self, state: dict) -> None:  # pragma: no cover - pickle
        object.__setattr__(self, "points", state["points"])
        self._init_caches()

    def __getstate__(self) -> dict:
        # Pickled across the sweep engine's worker pool: ship the single
        # field, rebuild the caches on the far side.
        return {"points": self.points}

    # -- flat-ladder compatible views -------------------------------------

    @property
    def levels(self) -> tuple[float, ...]:
        """Electrical frequencies of every operating point, in order."""
        return self._levels  # type: ignore[attr-defined]

    @property
    def r(self) -> int:
        """Number of operating points (the paper's ``r`` on one type)."""
        return len(self.points)

    @property
    def fastest(self) -> float:
        """Frequency of the fastest operating point (``F_0``)."""
        return self.levels[0]

    @property
    def slowest(self) -> float:
        """Frequency of the slowest operating point (``F_{r-1}``)."""
        return self.levels[-1]

    @property
    def fastest_index(self) -> int:
        return 0

    @property
    def slowest_index(self) -> int:
        return self.r - 1

    def __len__(self) -> int:
        return self.r

    def __iter__(self) -> Iterator[float]:
        return iter(self.levels)

    def __getitem__(self, index: int) -> float:
        return self.levels[index]

    # -- arithmetic used by the CC table ----------------------------------

    def effective(self, index: int) -> float:
        """Effective speed (reference cycles/second) of point ``index``."""
        return self._effective[index]  # type: ignore[attr-defined]

    def slowdown(self, index: int) -> float:
        """How much slower point ``index`` is than the fastest point.

        Generalises Table I's ``F_0 / F_j`` to effective speeds; on a
        one-type space with ``ipc_scale == 1.0`` this is bit-identical to
        the frequency ratio.
        """
        eff = self._effective  # type: ignore[attr-defined]
        return eff[0] / eff[index]

    def relative_speed(self, index: int) -> float:
        """Normalised capacity of point ``index`` in ``(0, 1]``."""
        eff = self._effective  # type: ignore[attr-defined]
        return eff[index] / eff[0]

    def index_of(self, frequency: float, *, tol: float = 1e-6) -> int:
        """First point whose frequency matches ``frequency`` within ``tol``."""
        for i, f in enumerate(self.levels):
            if abs(f - frequency) <= tol * f:
                return i
        raise ConfigurationError(
            f"{frequency!r} Hz is not a level of {self.levels}"
        )

    def validate_index(self, index: int) -> int:
        """Bounds-check a point index and return it."""
        if not 0 <= index < self.r:
            raise ConfigurationError(
                f"frequency index {index} out of range [0, {self.r})"
            )
        return index

    # -- per-type views ----------------------------------------------------

    @property
    def types(self) -> tuple[str, ...]:
        """Core type names in declaration order."""
        return self._types  # type: ignore[attr-defined]

    @property
    def is_homogeneous(self) -> bool:
        return len(self.types) == 1

    def index_for(self, core_type: str, type_level: int) -> int:
        """Global point index of ``core_type``'s ``type_level``-th point."""
        try:
            return self._index_for[(core_type, type_level)]  # type: ignore[attr-defined]
        except KeyError:
            raise ConfigurationError(
                f"no operating point ({core_type!r}, level {type_level}) "
                f"in space over types {self.types}"
            ) from None

    def core_type_of(self, index: int) -> str:
        """Core type of point ``index``."""
        return self.points[self.validate_index(index)].core_type

    def type_level_of(self, index: int) -> int:
        """Type-local ladder level of point ``index``."""
        return self._type_levels[self.validate_index(index)]  # type: ignore[attr-defined]

    def ladder(self, core_type: str) -> "OperatingPointSpace":
        """The one-type sub-space of ``core_type``'s points, in order.

        On a space that already holds a single type this returns ``self``
        (object identity), so homogeneous machines keep sharing one scale
        object across every core — exactly the pre-refactor layout.
        """
        if self.is_homogeneous:
            if core_type != self.types[0]:
                raise ConfigurationError(
                    f"no core type {core_type!r} in space over {self.types}"
                )
            return self
        ladders = self._ladders  # type: ignore[attr-defined]
        cached = ladders.get(core_type)
        if cached is None:
            points = tuple(p for p in self.points if p.core_type == core_type)
            if not points:
                raise ConfigurationError(
                    f"no core type {core_type!r} in space over {self.types}"
                )
            cached = ladders[core_type] = OperatingPointSpace(points)
        return cached


def homogeneous_space(
    levels: Sequence[float], *, core_type: str = DEFAULT_CORE_TYPE
) -> OperatingPointSpace:
    """A one-type operating-point space from a flat frequency ladder.

    This is the non-deprecated spelling of the old ``FrequencyScale``
    constructor: strictly-descending positive frequencies, ``ipc_scale``
    pinned at 1.0.
    """
    levels = tuple(float(f) for f in levels)
    if not levels:
        raise ConfigurationError("a frequency scale needs at least one level")
    if any(f <= 0.0 for f in levels):
        raise ConfigurationError(f"frequencies must be positive, got {levels}")
    if any(a <= b for a, b in zip(levels, levels[1:])):
        raise ConfigurationError(
            f"frequencies must be strictly descending (F_0 fastest), got {levels}"
        )
    return OperatingPointSpace(
        tuple(OperatingPoint(core_type, f) for f in levels)
    )


def space_from_ladders(
    ladders: Sequence[tuple[str, Sequence[float], float]],
) -> OperatingPointSpace:
    """Build a space from per-type ladders.

    ``ladders`` is a sequence of ``(core_type, frequencies, ipc_scale)``
    triples; each type's frequencies must be strictly descending. The
    points are merged into one space sorted by descending effective speed
    with ties in declaration order.
    """
    if not ladders:
        raise ConfigurationError("need at least one core-type ladder")
    rank: dict[str, int] = {}
    points: list[OperatingPoint] = []
    for core_type, freqs, ipc in ladders:
        if core_type in rank:
            raise ConfigurationError(f"duplicate core type {core_type!r}")
        rank[core_type] = len(rank)
        freqs = tuple(float(f) for f in freqs)
        if not freqs:
            raise ConfigurationError(
                f"core type {core_type!r} needs at least one frequency"
            )
        if any(a <= b for a, b in zip(freqs, freqs[1:])):
            raise ConfigurationError(
                f"core type {core_type!r} frequencies must be strictly "
                f"descending, got {freqs}"
            )
        points.extend(OperatingPoint(core_type, f, ipc) for f in freqs)
    points.sort(key=lambda p: (-p.effective_hz, rank[p.core_type]))
    return OperatingPointSpace(tuple(points))


__all__ = [
    "DEFAULT_CORE_TYPE",
    "OperatingPoint",
    "OperatingPointSpace",
    "homogeneous_space",
    "space_from_ladders",
]
