"""``python -m repro.checks`` — run the full check battery."""

import sys

from repro.checks.runner import main

if __name__ == "__main__":
    sys.exit(main())
