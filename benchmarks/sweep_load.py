"""Load-test harness for the sweep engine — writes ``BENCH_sweep.json``.

Throws a duplicate-heavy load (default 1000 submissions drawn from 8
distinct cells) at a :class:`~repro.experiments.sweep.SweepEngine` and
records, per phase:

* **cold** — fresh cache: the whole load is submitted up front, so every
  duplicate coalesces onto an in-flight cell and only the distinct cells
  simulate. Per-submission latency is time-to-resolution from phase start.
* **legacy per-call** — the pre-engine shape on the now-warm cache: every
  submission is its own run_cells-style call, paying one key computation
  plus one loose-file ``open`` + unpickle round-trip per cell (exactly
  what the one-shot ``ParallelRunner`` cost before the engine existed).
* **warm** — a *new* engine over the compacted cache: the packed shard
  indexes serve each distinct cell once, the in-memory memo serves every
  duplicate, and zero cells simulate.

Usage::

    PYTHONPATH=src python benchmarks/sweep_load.py [--submissions 1000]
        [--out BENCH_sweep.json] [--cache-dir DIR] [--no-check]

The acceptance gate (``--no-check`` disables it) asserts the warm phase
executed 0 simulations and achieved >= 5x the legacy per-call throughput.
Timings are machine-dependent; correctness is gated separately by
``tests/experiments/test_sweep_golden.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import random
import shutil
import statistics
import sys
import tempfile
import time

from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    ResultCache,
    _resolve_program,
    cell_key,
)
from repro.experiments.sweep import SweepEngine
from repro.machine.topology import opteron_8380_machine

#: The distinct-cell population the duplicate-heavy load draws from.
BENCHMARKS = ("SHA-1", "BWC")
POLICIES = ("cilk", "eewa")
SEEDS = (11, 23)
BATCHES = 2

#: Deterministic load order (the harness has no RNG of its own beyond this).
RNG_SEED = 0xEE7A


def population() -> list[CellSpec]:
    return [
        CellSpec(benchmark=bench, policy=policy, seed=seed, batches=BATCHES)
        for bench in BENCHMARKS
        for policy in POLICIES
        for seed in SEEDS
    ]


def make_load(submissions: int) -> list[CellSpec]:
    cells = population()
    rng = random.Random(RNG_SEED)
    # Every distinct cell appears at least once; the rest is duplicates.
    load = list(cells)
    load.extend(rng.choice(cells) for _ in range(submissions - len(cells)))
    rng.shuffle(load)
    return load[:submissions]


def _percentiles_ms(latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    qs = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "p50_ms": 1e3 * qs[49],
        "p99_ms": 1e3 * qs[98],
        "max_ms": 1e3 * ordered[-1],
    }


def run_engine_phase(
    load: list[CellSpec], cache_dir: str, *, workers: int | None
) -> dict[str, object]:
    """Submit the whole load to one engine; latency = time to resolution."""
    engine = SweepEngine(workers=workers, cache_dir=cache_dir)
    try:
        started = time.perf_counter()
        tickets = engine.submit_many(load)
        latencies = []
        for ticket in tickets:
            ticket.result()
            latencies.append(time.perf_counter() - started)
        wall = time.perf_counter() - started
        stats = engine.stats
        dedup_hits = stats.deduplicated + stats.cache_hits
        return {
            "submissions": len(load),
            "wall_seconds": wall,
            "throughput_per_sec": len(load) / wall,
            "cells_simulated": stats.executed,
            "deduplicated_inflight": stats.deduplicated,
            "cache_hits": stats.cache_hits,
            "memo_hits": stats.memo_hits,
            "dispatch_chunks": stats.chunks,
            "dedup_hit_rate": dedup_hits / len(load),
            **_percentiles_ms(latencies),
        }
    finally:
        engine.close()


def run_legacy_phase(load: list[CellSpec], cache_dir: str) -> dict[str, object]:
    """The pre-engine per-call fan-out on a warm loose-file cache.

    Before the sweep engine, every ``run_cells`` call re-resolved its
    cells against the flat loose-file cache: per cell, one content-key
    computation and one ``open`` + unpickle of the entry file, with no
    cross-call memo. Replayed here verbatim (reads the loose files the
    cold phase just wrote, *before* compaction packs them).
    """
    machine = opteron_8380_machine()
    root = ResultCache(cache_dir)  # path layout helper only
    started = time.perf_counter()
    latencies = []
    for spec in load:
        program = _resolve_program(spec)
        key = cell_key(
            program, spec.policy, machine, spec.seed,
            core_levels=spec.core_levels, eewa_config=spec.eewa_config,
            policy_params=spec.policy_params, faults=spec.faults,
        )
        with open(root._path(key), "rb") as fh:  # one stat+open per call
            payload = pickle.load(fh)
        CellOutcome(
            spec=spec, key=key, result=payload["result"], from_cache=True,
            adjuster_wallclock_s=payload["adjuster_wallclock_s"],
            adjuster_decisions=payload["adjuster_decisions"],
        )
        latencies.append(time.perf_counter() - started)
    wall = time.perf_counter() - started
    return {
        "submissions": len(load),
        "wall_seconds": wall,
        "throughput_per_sec": len(load) / wall,
        **_percentiles_ms(latencies),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--submissions", type=int, default=1000)
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument(
        "--cache-dir",
        help="cache root to use (default: a fresh temp dir, removed after)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="engine worker processes (default 0: in-process)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the 0-simulated / >=5x-throughput acceptance assertions",
    )
    args = parser.parse_args(argv)
    if args.submissions < len(population()):
        parser.error(f"--submissions must be >= {len(population())}")

    load = make_load(args.submissions)
    owns_cache = args.cache_dir is None
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="sweep-load-")
    try:
        print(f"load: {len(load)} submissions over {len(population())} "
              f"distinct cells ({BATCHES} batches each)")

        cold = run_engine_phase(load, cache_dir, workers=args.workers)
        print(f"cold:   {cold['wall_seconds']:.3f}s "
              f"({cold['cells_simulated']} simulated in "
              f"{cold['dispatch_chunks']} chunks, "
              f"{100 * cold['dedup_hit_rate']:.1f}% dedup)")

        legacy = run_legacy_phase(load, cache_dir)
        print(f"legacy: {legacy['wall_seconds']:.3f}s "
              f"({legacy['throughput_per_sec']:.0f} lookups/s, "
              "one loose-file unpickle per call)")

        compact_started = time.perf_counter()
        absorbed = ResultCache(cache_dir).compact()
        compact = {
            "loose_entries_packed": absorbed,
            "wall_seconds": time.perf_counter() - compact_started,
        }

        warm = run_engine_phase(load, cache_dir, workers=args.workers)
        warm["speedup_vs_legacy_per_call"] = (
            warm["throughput_per_sec"] / legacy["throughput_per_sec"]
        )
        print(f"warm:   {warm['wall_seconds']:.3f}s "
              f"({warm['cells_simulated']} simulated, "
              f"{warm['memo_hits']} memo hits, "
              f"{warm['speedup_vs_legacy_per_call']:.1f}x legacy throughput)")
    finally:
        if owns_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)

    report = {
        "generated_by": "benchmarks/sweep_load.py",
        "host": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "load": {
            "submissions": len(load),
            "distinct_cells": len(population()),
            "benchmarks": list(BENCHMARKS),
            "policies": list(POLICIES),
            "seeds": list(SEEDS),
            "batches": BATCHES,
            "rng_seed": RNG_SEED,
        },
        "cold": cold,
        "legacy_per_call": legacy,
        "compact": compact,
        "warm": warm,
        "acceptance": {
            "warm_cells_simulated": warm["cells_simulated"],
            "warm_speedup_vs_legacy_per_call":
                warm["speedup_vs_legacy_per_call"],
            "meets_5x_over_legacy": warm["speedup_vs_legacy_per_call"] >= 5.0,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not args.no_check:
        assert warm["cells_simulated"] == 0, (
            f"warm phase simulated {warm['cells_simulated']} cells; "
            "expected every submission to be served from cache/memo"
        )
        assert warm["speedup_vs_legacy_per_call"] >= 5.0, (
            f"warm throughput only {warm['speedup_vs_legacy_per_call']:.1f}x "
            "the legacy per-call fan-out (need >= 5x)"
        )
        print("acceptance: warm phase 0 simulated, >=5x legacy — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
