"""Tests for the extension experiment modules."""

import pytest

from repro.experiments.ext_imbalance import run_imbalance_sweep
from repro.experiments.ext_thermal import run_thermal_study


class TestThermalStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_thermal_study(batches=8, policies=("cilk", "eewa"))

    def test_rows_and_table(self, study):
        assert [r.policy for r in study.rows] == ["cilk", "eewa"]
        text = study.table()
        assert "thermal headroom" in text
        assert "SHA-1" in text

    def test_eewa_cooler_on_average(self, study):
        assert study.row("eewa").mean_peak_c < study.row("cilk").mean_peak_c

    def test_socket_peaks_present(self, study):
        for row in study.rows:
            assert len(row.socket_peaks_c) == 4

    def test_unknown_policy_lookup(self, study):
        with pytest.raises(KeyError):
            study.row("tbb")


class TestImbalanceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_imbalance_sweep(anchors=(2, 8, 14), batches=6)

    def test_points_ordered(self, sweep):
        assert [p.anchors for p in sweep.points] == [2, 8, 14]

    def test_slack_decreases_with_anchors(self, sweep):
        slacks = [p.slack_cores for p in sweep.points]
        assert slacks[0] > slacks[1] > slacks[2]

    def test_savings_monotone_in_slack(self, sweep):
        assert sweep.savings_monotone_in_slack()

    def test_saturated_point_saves_nothing(self, sweep):
        saturated = sweep.points[-1]
        assert saturated.energy_saving_pct < 5.0

    def test_table_renders(self, sweep):
        text = sweep.table()
        assert "imbalance" in text
        assert "modal config" in text
