"""Tests for the k-tuple search (Algorithm 1) and the exhaustive yardstick."""

import pytest

from repro.core.cc_table import cc_table_from_values
from repro.core.ktuple import (
    KTupleSolution,
    default_power_estimate,
    exhaustive_search,
    power_model_estimate,
    search_ktuple,
)
from repro.errors import SearchError
from repro.machine.frequency import FrequencyScale, opteron_8380_scale
from repro.machine.power import calibrated_power_model

#: The exact CC table of the paper's Fig. 3.
FIG3_VALUES = [
    [2, 3, 1, 1],
    [4, 6, 2, 2],
    [6, 9, 3, 3],
    [8, 12, 4, 4],
]


def fig3_table():
    return cc_table_from_values(FIG3_VALUES, opteron_8380_scale())


class TestPaperExample:
    def test_fig3_yields_the_papers_tuple(self):
        """Algorithm 1 on Fig. 3's table with 16 cores returns (1, 1, 2, 2)."""
        solution = search_ktuple(fig3_table(), num_cores=16)
        assert solution is not None
        assert solution.assignment == (1, 1, 2, 2)

    def test_fig3_core_accounting(self):
        """Paper: '10 cores should run at F_1, and 6 cores at F_2'."""
        solution = search_ktuple(fig3_table(), num_cores=16)
        demand = solution.demand_by_level()
        assert demand[1] == pytest.approx(10.0)
        assert demand[2] == pytest.approx(6.0)
        assert solution.total_cores == pytest.approx(16.0)


class TestConstraints:
    def test_capacity_constraint_respected(self):
        for m in (4, 7, 16, 30):
            solution = search_ktuple(fig3_table(), num_cores=m)
            if solution is not None:
                assert solution.total_cores <= m + 1e-9

    def test_monotonicity_constraint(self):
        for m in (7, 10, 16, 24):
            solution = search_ktuple(fig3_table(), num_cores=m)
            if solution is not None:
                assert solution.is_monotone()

    def test_infeasible_returns_none(self):
        # Even the all-fastest row needs 7 cores; 5 cannot fit.
        assert search_ktuple(fig3_table(), num_cores=5) is None

    def test_trivially_feasible_prefers_slow(self):
        # With unlimited cores, everything lands on the slowest level.
        solution = search_ktuple(fig3_table(), num_cores=1000)
        assert solution.assignment == (3, 3, 3, 3)

    def test_single_class(self):
        scale = FrequencyScale((2.0e9, 1.0e9))
        table = cc_table_from_values([[2.0], [4.0]], scale)
        assert search_ktuple(table, num_cores=4).assignment == (1,)
        assert search_ktuple(table, num_cores=3).assignment == (0,)
        assert search_ktuple(table, num_cores=1) is None

    def test_invalid_core_count_rejected(self):
        with pytest.raises(SearchError):
            search_ktuple(fig3_table(), num_cores=0)


class TestExhaustive:
    def test_exhaustive_is_feasible_and_monotone(self):
        solution = exhaustive_search(fig3_table(), num_cores=16)
        assert solution is not None
        assert solution.total_cores <= 16
        assert solution.is_monotone()

    def test_exhaustive_never_worse_than_backtracking(self):
        """The yardstick property behind the paper's 'near-optimal' claim."""
        table = fig3_table()
        estimate = default_power_estimate(table)
        for m in (7, 9, 12, 16, 20):
            bt = search_ktuple(table, m)
            ex = exhaustive_search(table, m)
            assert (bt is None) == (ex is None)
            if bt is not None:
                assert estimate(ex) <= estimate(bt) + 1e-12

    def test_power_model_estimate_orders_solutions(self):
        table = fig3_table()
        power = calibrated_power_model(opteron_8380_scale())
        estimate = power_model_estimate(table, power, num_cores=16)
        fast = KTupleSolution(assignment=(0, 0, 0, 0), core_demand=(2, 3, 1, 1))
        slow = KTupleSolution(assignment=(1, 1, 2, 2), core_demand=(4, 6, 3, 3))
        # The slow solution uses more cores but far less power per core,
        # and leaves no cores spinning at the slowest level; charging the
        # leftover cores makes the estimate prefer it (EEWA's whole point).
        assert estimate(slow) < estimate(fast)

    def test_exhaustive_infeasible_returns_none(self):
        assert exhaustive_search(fig3_table(), num_cores=5) is None

    def test_exact_tie_prefers_the_slower_tuple(self):
        # Dyadic ladder (relative speeds 1, 1/2, 1/4) with CC column
        # [1, 9, 100] on 9 cores: (0,) costs 1 + 8 * (1/4)^3 = 1.125 and
        # (1,) costs 9 * (1/2)^3 = 1.125 — exactly equal in binary floats
        # — while (2,) does not fit. The energy-priority tie-break must
        # pick the slower assignment, not the first one enumerated.
        scale = FrequencyScale((2.0e9, 1.0e9, 0.5e9))
        table = cc_table_from_values([[1.0], [9.0], [100.0]], scale)
        solution = exhaustive_search(table, num_cores=9)
        assert solution is not None
        assert solution.assignment == (1,)


class TestSolutionViews:
    def test_levels_used(self):
        s = KTupleSolution(assignment=(0, 2, 2), core_demand=(1.0, 2.0, 3.0))
        assert s.levels_used == (0, 2)
        assert s.demand_by_level() == {0: 1.0, 2: 5.0}
