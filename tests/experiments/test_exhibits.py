"""Tests for the experiment modules (reduced-size runs of every exhibit)."""

import math

import pytest

from repro.experiments.fig1 import analytic_schedules, fig1_rows, run_fig1
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.report import format_percent, format_series, format_table
from repro.experiments.runner import make_policy, modal_eewa_levels, run_benchmark
from repro.experiments.table3 import run_table3
from repro.errors import ConfigurationError

SEEDS = (11,)


class TestRunner:
    def test_make_policy_names(self):
        assert make_policy("cilk").name == "cilk"
        assert make_policy("cilk-d").name == "cilk-d"
        assert make_policy("eewa").name == "eewa"
        assert make_policy("wats", core_levels=[0, 1]).name == "wats"

    def test_make_policy_validation(self):
        with pytest.raises(ConfigurationError):
            make_policy("rr")
        with pytest.raises(ConfigurationError):
            make_policy("wats")
        with pytest.raises(ConfigurationError):
            make_policy("eewa", core_levels=[0])

    def test_run_benchmark_pairs_programs(self):
        a = run_benchmark("MD5", "cilk", batches=3, seeds=(5,))
        b = run_benchmark("MD5", "eewa", batches=3, seeds=(5,))
        assert a.first.tasks_executed == b.first.tasks_executed

    def test_modal_levels_shape(self):
        levels = modal_eewa_levels("SHA-1", batches=4)
        assert len(levels) == 16
        assert all(0 <= lv <= 3 for lv in levels)


class TestFig1:
    def test_schedule_ordering_matches_paper(self):
        """(b) saves energy at equal time; (c) loses on both axes vs (b)."""
        a, b, c, d = analytic_schedules(0.1)
        assert b.finish_time == pytest.approx(a.finish_time)
        assert b.energy < a.energy
        assert c.finish_time > b.finish_time
        assert c.energy > b.energy
        assert d.finish_time > b.finish_time

    def test_eewa_lands_on_schedule_b(self):
        result = run_fig1(0.1, batches=3)
        hists = result.trace.level_histograms()
        assert hists[0] == (2, 0)
        assert hists[-1] == (1, 1)
        # Steady-batch duration stays 2t.
        assert result.trace.batches[-1].duration == pytest.approx(0.2, rel=0.02)

    def test_fig1_rows_format(self):
        rows = fig1_rows(0.05)
        assert len(rows) == 5
        labels = [r[0] for r in rows]
        assert any("eewa" in label for label in labels)


class TestFig6:
    def test_shape_on_two_benchmarks(self):
        result = run_fig6(benchmarks=("MD5", "SHA-1"), batches=6, seeds=SEEDS)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.energy_eewa < row.energy_cilk  # EEWA wins on energy
            assert row.energy_eewa < row.energy_cilk_d  # and beats Cilk-D
            assert abs(row.eewa_time_change_pct) < 10.0  # time roughly held
        table = result.table()
        assert "MD5" in table and "SHA-1" in table


class TestFig7:
    def test_cilk_much_slower_wats_close_to_eewa(self):
        result = run_fig7(benchmarks=("SHA-1",), seeds=SEEDS, include_phased=False)
        row = result.rows[0]
        # Random stealing on the asymmetric config is disastrous...
        assert row.cilk_over_eewa > 1.5
        # ...while workload-aware stealing stays within a few percent of
        # EEWA (our WATS shares EEWA's machinery; see EXPERIMENTS.md).
        assert 0.9 < row.wats_over_eewa < 1.3
        assert row.wats_over_eewa < row.cilk_over_eewa
        assert "SHA-1" in result.table()

    def test_phased_row_included_by_default(self):
        result = run_fig7(benchmarks=(), seeds=SEEDS)
        assert [r.benchmark for r in result.rows] == ["DMC-phased"]


class TestFig8:
    def test_first_batch_all_fast_then_majority_slow(self):
        result = run_fig8(batches=6)
        hists = result.histograms
        assert hists[0] == (16, 0, 0, 0)
        for hist in hists[1:]:
            assert sum(hist) == 16
            assert hist[0] < 16
        # Paper shape: most cores end up at the lowest frequency.
        final = hists[-1]
        assert final[-1] >= 8

    def test_table_renders(self):
        result = run_fig8(batches=3)
        assert "2.5GHz" in result.table()


class TestFig9:
    def test_savings_grow_with_cores(self):
        result = run_fig9(core_counts=(4, 16), batches=6, seeds=SEEDS)
        savings = result.eewa_savings_by_cores()
        assert savings[4] < 5.0  # saturated: nothing to harvest
        assert savings[16] > 15.0  # plenty of slack
        assert savings[16] > savings[4]

    def test_time_held_at_all_scales(self):
        result = run_fig9(core_counts=(4, 16), batches=6, seeds=SEEDS)
        for point in result.points:
            assert point.time_eewa < 1.1


class TestTable3:
    def test_overhead_under_two_percent(self):
        result = run_table3(benchmarks=("MD5", "DMC"), batches=8)
        assert result.max_overhead_pct() < 2.0
        for row in result.rows:
            assert row.overhead_ms > 0
            assert row.decisions == 8
            assert math.isfinite(row.measured_wallclock_ms)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1.0, "x"], [2.5, "yy"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        out = format_series("s", [4, 8], [1.0, 2.0])
        assert out == "s: 4=1.000, 8=2.000"

    def test_format_percent(self):
        assert format_percent(3.14) == "+3.1%"
        assert format_percent(-2.0) == "-2.0%"
