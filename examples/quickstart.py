#!/usr/bin/env python3
"""Quickstart: schedule a benchmark with EEWA and see the energy savings.

Runs the paper's MD5 benchmark on the simulated 16-core Opteron testbed
under plain work-stealing (Cilk), Cilk-D (naive DVFS on idle cores) and
EEWA, then prints execution time, whole-machine energy, and EEWA's
per-batch frequency decisions.

Usage:
    python examples/quickstart.py [benchmark] [batches]
"""

from __future__ import annotations

import sys

from repro import (
    CilkDScheduler,
    CilkScheduler,
    EEWAScheduler,
    opteron_8380_machine,
    simulate,
)
from repro.workloads import benchmark_program


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "MD5"
    batches = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    machine = opteron_8380_machine()
    program = benchmark_program(benchmark, batches=batches, seed=7)
    print(
        f"{benchmark}: {len(program)} batches x {len(program[0])} tasks "
        f"on {machine.num_cores} cores "
        f"({'/'.join(f'{f/1e9:.1f}' for f in machine.scale)} GHz)\n"
    )

    results = {}
    for policy in (CilkScheduler(), CilkDScheduler(), EEWAScheduler()):
        results[policy.name] = simulate(program, policy, machine, seed=7)

    cilk = results["cilk"]
    print(f"{'policy':8s} {'time (ms)':>10s} {'energy (J)':>11s} {'vs cilk':>18s}")
    for name, result in results.items():
        dt = 100 * (result.total_time / cilk.total_time - 1)
        de = 100 * (result.total_joules / cilk.total_joules - 1)
        print(
            f"{name:8s} {result.total_time*1e3:10.1f} {result.total_joules:11.2f}"
            f"   time {dt:+5.1f}%  energy {de:+5.1f}%"
        )

    print("\nEEWA per-batch core frequencies (cores at each level, fast->slow):")
    for i, hist in enumerate(results["eewa"].trace.level_histograms()):
        note = "  <- profiling batch, all cores fast" if i == 0 else ""
        print(f"  batch {i:2d}: {hist}{note}")

    eewa = results["eewa"]
    print(
        f"\nEEWA spent {eewa.adjust_overhead_seconds*1e3:.1f} ms "
        f"({100*eewa.adjust_overhead_seconds/eewa.total_time:.2f}%) deciding "
        f"frequency configurations (paper Table III: always < 2%)."
    )


if __name__ == "__main__":
    main()
