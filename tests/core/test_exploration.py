"""Tests for the regression-mode frequency exploration batch."""

import pytest

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.core.membound import MemoryBoundMode
from repro.machine.counters import PerfCounters
from repro.machine.topology import opteron_8380_machine
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.5e9
HOT = PerfCounters(retired_instructions=1000, cache_misses=100)


def membound_program(batches=8):
    out = []
    for i in range(batches):
        specs = [
            TaskSpec("scan", cpu_cycles=0.005 * REF, mem_stall_seconds=0.011,
                     counters=HOT)
            for _ in range(6)
        ]
        specs += [
            TaskSpec("copy", cpu_cycles=0.001 * REF, mem_stall_seconds=0.002,
                     counters=HOT)
            for _ in range(20)
        ]
        out.append(flat_batch(i, specs))
    return out


@pytest.fixture
def regression_run():
    machine = opteron_8380_machine()
    policy = EEWAScheduler(EEWAConfig(memory_bound_mode=MemoryBoundMode.REGRESSION))
    result = simulate(membound_program(), policy, machine, seed=2)
    return machine, policy, result


class TestExploration:
    def test_exploration_batch_is_second(self, regression_run):
        _, policy, result = regression_run
        hists = result.trace.level_histograms()
        assert hists[0] == (16, 0, 0, 0)  # profiling
        # Exploration: a third of the cores at F1.
        assert hists[1][1] >= 4
        assert policy.decisions[0].fallback_reason == "regression exploration batch"

    def test_exploration_collects_multi_frequency_samples(self, regression_run):
        _, policy, _ = regression_run
        reg = policy.regression
        for fn in ("scan", "copy"):
            model = reg.fit(fn)
            assert model.distinct_frequencies >= 2, fn
            assert not model.is_degenerate

    def test_fitted_models_recover_stall_component(self, regression_run):
        """scan is ~85% stall: the fitted b must dominate a/F_0."""
        _, policy, _ = regression_run
        model = policy.regression.fit("scan")
        assert model.stall_seconds == pytest.approx(0.011, rel=0.15)
        assert model.cpu_cycles == pytest.approx(0.005 * REF, rel=0.3)

    def test_post_exploration_batches_scale_down(self, regression_run):
        _, _, result = regression_run
        hists = result.trace.level_histograms()
        # After profiling + exploration, the model finds the slack.
        assert any(h[0] < 16 for h in hists[2:])

    def test_exploration_happens_once(self, regression_run):
        _, policy, _ = regression_run
        exploration = [
            d for d in policy.decisions
            if d.fallback_reason == "regression exploration batch"
        ]
        assert len(exploration) == 1

    def test_regression_saves_energy_where_fallback_cannot(self):
        machine = opteron_8380_machine()
        program = membound_program()
        fallback = simulate(
            program,
            EEWAScheduler(EEWAConfig(memory_bound_mode=MemoryBoundMode.FALLBACK)),
            machine,
            seed=2,
        )
        regression = simulate(
            program,
            EEWAScheduler(EEWAConfig(memory_bound_mode=MemoryBoundMode.REGRESSION)),
            machine,
            seed=2,
        )
        assert regression.total_joules < 0.95 * fallback.total_joules
        # Memory-bound code barely slows at lower frequency: time held.
        assert regression.total_time < 1.12 * fallback.total_time
