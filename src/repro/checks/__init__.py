"""Static analysis and model checking for the EEWA reproduction.

Three engines, one finding model, one CLI (``repro check`` /
``python -m repro.checks``):

* :mod:`repro.checks.lint` — repo-specific AST rules (``EEWA001``...):
  unseeded randomness, wall-clock reads, and set-iteration hazards in the
  deterministic zone; float-literal equality in scheduler math; mutable
  defaults and silent ``except`` everywhere.
* :mod:`repro.checks.invariants` — bounded exhaustive model checking of
  Algorithm 1 (monotonicity, feasibility, completeness, bottom-up
  minimality) and the Fig. 5 preference-list shape.
* :mod:`repro.checks.races` — vector-clock happens-before analysis over
  deep simulation traces: double execution, lost tasks, and steals that
  violate the rob-the-weaker-first order.

These exist to make aggressive refactoring safe: the properties the rest
of the test suite *assumes* are checked here mechanically.
"""

from repro.checks.findings import (
    Finding,
    Severity,
    exit_code,
    render_json,
    render_text,
)
from repro.checks.invariants import (
    check_invariants,
    check_ktuple_invariants,
    check_preference_invariants,
)
from repro.checks.lint import lint_paths, lint_source
from repro.checks.races import check_shipped_policies, find_trace_races
from repro.checks.runner import main, run_checks

__all__ = [
    "Finding",
    "Severity",
    "check_invariants",
    "check_ktuple_invariants",
    "check_preference_invariants",
    "check_shipped_policies",
    "exit_code",
    "find_trace_races",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "run_checks",
]
