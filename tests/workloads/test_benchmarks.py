"""Tests for the seven named benchmarks and synthetic workloads."""

import pytest

from repro.errors import WorkloadError
from repro.machine.frequency import GHZ
from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    benchmark_program,
    benchmark_spec,
    memory_bound_spec,
)
from repro.workloads.synthetic import fig1_program, imbalance_sweep_spec, uniform_spec


class TestBenchmarkSpecs:
    def test_all_table2_benchmarks_present(self):
        assert BENCHMARK_NAMES == ("BWC", "Bzip-2", "DMC", "JE", "LZW", "MD5", "SHA-1")
        for name in BENCHMARK_NAMES:
            spec = benchmark_spec(name)
            assert spec.name == name
            assert spec.classes

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            benchmark_spec("SPECint")

    def test_utilization_spread(self):
        """Calibration premise: benchmarks span a range of slack, from the
        near-saturated (small savings) to the granularity-bound (Fig. 8)."""
        utils = {n: benchmark_spec(n).utilization(16) for n in BENCHMARK_NAMES}
        assert min(utils.values()) < 0.55
        assert max(utils.values()) > 0.80

    def test_sha1_has_ten_batches_default(self):
        assert benchmark_spec("SHA-1").default_batches == 10

    def test_cpu_bound_by_construction(self):
        for name in BENCHMARK_NAMES:
            for cls in benchmark_spec(name).classes:
                assert cls.mem_stall_fraction == 0.0
                assert cls.miss_intensity < 0.01

    def test_memory_bound_spec_is_memory_bound(self):
        spec = memory_bound_spec()
        for cls in spec.classes:
            assert cls.mem_stall_fraction > 0.5
            assert cls.miss_intensity > 0.01

    def test_programs_generate(self):
        for name in BENCHMARK_NAMES:
            program = benchmark_program(name, batches=2, seed=0)
            assert len(program) == 2
            spec = benchmark_spec(name)
            assert len(program[0]) == spec.tasks_per_batch


class TestSynthetic:
    def test_fig1_program_shape(self):
        program = fig1_program(0.1, ref_frequency=2.0 * GHZ, batches=2)
        assert len(program) == 2
        g0, g1 = program[0].specs
        assert g0.cpu_cycles == pytest.approx(2 * g1.cpu_cycles)

    def test_fig1_validation(self):
        with pytest.raises(WorkloadError):
            fig1_program(0.0)

    def test_imbalance_sweep_monotone_utilization(self):
        utils = [
            imbalance_sweep_spec(h).utilization(16) for h in (2, 6, 12)
        ]
        assert utils[0] < utils[1] < utils[2]

    def test_uniform_spec_single_class(self):
        spec = uniform_spec(tasks=64)
        assert spec.tasks_per_batch == 64
        assert len(spec.classes) == 1
