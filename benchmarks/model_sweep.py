"""Analytic-model sweep benchmark — writes ``BENCH_model.json``.

Drives a large grid (default 1,000,000 cells) through the sweep engine's
``fidelity="model"`` tier and records the per-cell cost of serving a cell
from the analytic predictor versus cold simulation. The grid is the
long-horizon periodic family the model was calibrated on
(``tests/sim/golden_longhorizon_gen.py`` shape): periodic programs of
120/240 batches in three heavy/light mixes on the 8-core dyadic machine,
under 9 policy configurations (pinned-cilk level vectors, cilk-d idle
grace values, eewa headroom variants) — 54 distinct (program × policy)
combinations, multiplied out over seeds to the requested cell count.

Three measurements, all recorded honestly:

* **model phase** — every cell submitted through a ``fidelity="model"``
  :class:`~repro.experiments.sweep.SweepEngine` with the cache disabled,
  so each submission pays the full prediction cost (the model is
  seed-independent, so a cache would trivialise the seed axis; per-cell
  numbers here are genuine compute, not lookups).
* **cold-sim sample** — one cold simulation per distinct (program ×
  policy) combination, timed through the engine's real worker entry
  point (``_simulate_cell``, ``fast_forward=True``). Sampled, not
  exhaustive: simulating the full grid at ~50 ms/cell would take hours;
  the sample covers every combination exactly once and the report says
  so. The sampled cells double as an in-grid accuracy check: model vs
  sim relative error is recorded per sample.
* **calibration-grid validation** — :func:`repro.model.validate.run_validation`
  over the 30 golden + 8 long-horizon cells: per-metric error
  percentiles for every eligible cell plus the aggregate speedup on the
  golden grid itself (much smaller than on this grid — the golden cells
  are 3-batch programs, where the adjuster cost the model and simulator
  *share* dominates).

Usage::

    PYTHONPATH=src python benchmarks/model_sweep.py [--cells 1000000]
        [--out BENCH_model.json] [--sim-sample 54] [--no-check]

The acceptance gate (``--no-check`` disables it) asserts every grid cell
was served by the model, the per-cell model cost is >= 100x cheaper than
the sampled cold-sim cost, and every model-eligible cell — sampled and
calibration-grid — is within the calibrated error bound.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig
from repro.experiments.parallel import CellSpec, _simulate_cell
from repro.experiments.sweep import SweepEngine
from repro.machine.topology import dyadic_test_machine
from repro.model.bounds import MAX_RELATIVE_ERROR
from repro.model.validate import run_validation
from repro.workloads.periodic import periodic_program

#: Program axes (shared tuples — one generation per shape, hashed once).
BATCH_COUNTS = (120, 240)
SHAPES = ((4, 8), (2, 10), (6, 6))  # (heavy, light) tasks per batch

#: The long-horizon grid's dyadic batch-boundary overhead (float-exact).
DYADIC_OVERHEAD = OverheadModel(base_seconds=2.0**-11, per_cell_seconds=2.0**-17)

NUM_CORES = 8


def policy_configs() -> list[tuple[str, dict]]:
    """The 9 policy configurations each program is crossed with."""
    return [
        ("cilk", {}),
        ("cilk", {"core_levels": (1,) * NUM_CORES}),
        # Uniform pins only: mixed per-core levels can make the schedule
        # placement-rotation (seed) dependent, which the model declines
        # and this benchmark's all-model acceptance gate forbids.
        ("cilk", {"core_levels": (2,) * NUM_CORES}),
        ("cilk-d", {}),
        ("cilk-d", {"policy_params": (("idle_grace_s", 0.001),)}),
        ("cilk-d", {"policy_params": (("idle_grace_s", 0.004),)}),
        ("eewa", {"eewa_config": EEWAConfig(overhead_model=DYADIC_OVERHEAD)}),
        ("eewa", {"eewa_config": EEWAConfig(
            overhead_model=DYADIC_OVERHEAD, headroom=0.2)}),
        ("eewa", {"eewa_config": EEWAConfig(
            overhead_model=DYADIC_OVERHEAD, headroom=0.05)}),
    ]


def combos() -> list[tuple[str, tuple, str, dict]]:
    """All distinct (program × policy) combinations, programs shared."""
    out = []
    for batches in BATCH_COUNTS:
        for heavy, light in SHAPES:
            label = f"periodic-{batches}x{heavy}h{light}l"
            program = tuple(periodic_program(batches, heavy, light))
            for policy, kwargs in policy_configs():
                out.append((label, program, policy, kwargs))
    return out


def grid_cells(cells: int, machine) -> "list[CellSpec]":
    """The benchmark grid: combos × seeds, truncated to ``cells``."""
    base = combos()
    seeds = -(-cells // len(base))  # ceil
    out = []
    for seed in range(seeds):
        for label, program, policy, kwargs in base:
            if len(out) == cells:
                return out
            out.append(CellSpec(
                benchmark=label, policy=policy, seed=seed,
                program=program, machine=machine, **kwargs,
            ))
    return out


def _percentiles_us(latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    qs = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "p50_us": 1e6 * qs[49],
        "p99_us": 1e6 * qs[98],
        "max_us": 1e6 * ordered[-1],
    }


def run_model_phase(specs: list[CellSpec], machine) -> dict[str, object]:
    """Every cell through ``fidelity="model"``, cache off: pure compute."""
    engine = SweepEngine(
        machine=machine, workers=0, cache_dir=None, fidelity="model"
    )
    latencies: list[float] = []
    sources: dict[str, int] = {}
    try:
        started = time.perf_counter()
        for i, spec in enumerate(specs):
            t0 = time.perf_counter()
            outcome = engine.submit(spec).result()
            latencies.append(time.perf_counter() - t0)
            sources[outcome.source] = sources.get(outcome.source, 0) + 1
            if (i + 1) % 100_000 == 0:
                rate = (i + 1) / (time.perf_counter() - started)
                print(f"  model: {i + 1}/{len(specs)} cells ({rate:.0f}/s)")
        wall = time.perf_counter() - started
    finally:
        engine.close()
    return {
        "cells": len(specs),
        "wall_seconds": wall,
        "throughput_per_sec": len(specs) / wall,
        "per_cell_us": 1e6 * statistics.fmean(latencies),
        "sources": sources,
        "model_cells": engine.stats.model_cells,
        **_percentiles_us(latencies),
    }


def run_sim_sample(sample: int, machine) -> dict[str, object]:
    """One cold simulation per sampled combo, plus model-vs-sim error."""
    from repro.model.predict import predict_cell

    rows = []
    for label, program, policy, kwargs in combos()[:sample]:
        args = (
            program, policy, machine, 0,
            kwargs.get("core_levels"), kwargs.get("eewa_config"),
            kwargs.get("policy_params"), True, None,
        )
        t0 = time.perf_counter()
        payload = _simulate_cell(*args)
        sim_seconds = time.perf_counter() - t0
        sim = payload["result"]
        model = predict_cell(
            program, policy, machine, 0,
            core_levels=kwargs.get("core_levels"),
            eewa_config=kwargs.get("eewa_config"),
            policy_params=kwargs.get("policy_params"),
        )
        rows.append({
            "combo": f"{label}/{policy}",
            "sim_seconds": sim_seconds,
            "time_error": abs(model.total_time - sim.total_time)
            / sim.total_time,
            "joules_error": abs(model.total_joules - sim.total_joules)
            / sim.total_joules,
        })
    per_cell = statistics.fmean(r["sim_seconds"] for r in rows)
    return {
        "sampled_combos": len(rows),
        "note": "cold sim sampled once per distinct combo, not per cell",
        "per_cell_ms": 1e3 * per_cell,
        "max_time_error": max(r["time_error"] for r in rows),
        "max_joules_error": max(r["joules_error"] for r in rows),
        "rows": rows,
    }


def run_calibration_validation() -> dict[str, object]:
    """The full calibration grid: error percentiles + golden speedup."""
    rows = run_validation()
    eligible = [r for r in rows if r.eligible]
    errors = sorted(r.max_error for r in eligible)

    def pct(p: float) -> float:
        return errors[min(len(errors) - 1, int(p * (len(errors) - 1)))]

    golden = [r for r in rows if not r.cell.startswith("periodic/")]
    golden_eligible = [r for r in golden if r.eligible]
    return {
        "cells": len(rows),
        "eligible_cells": len(eligible),
        "declined_or_ineligible": len(rows) - len(eligible),
        "error_bound": MAX_RELATIVE_ERROR,
        "max_error": errors[-1],
        "error_p50": pct(0.50),
        "error_p90": pct(0.90),
        "error_p99": pct(0.99),
        "all_within_bounds": all(r.within_bounds for r in eligible),
        "golden_grid_speedup_per_cell": (
            sum(r.sim_seconds for r in golden_eligible)
            / sum(r.model_seconds for r in golden_eligible)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=1_000_000)
    parser.add_argument("--out", default="BENCH_model.json")
    parser.add_argument(
        "--sim-sample", type=int, default=len(combos()),
        help="distinct combos to cold-simulate for the baseline "
        f"(default: all {len(combos())})",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the all-model / >=100x / error-bound assertions",
    )
    args = parser.parse_args(argv)
    n_combos = len(combos())
    if args.cells < n_combos:
        parser.error(f"--cells must be >= {n_combos}")
    sample = max(1, min(args.sim_sample, n_combos))

    machine = dyadic_test_machine(num_cores=NUM_CORES)
    specs = grid_cells(args.cells, machine)
    print(f"grid: {len(specs)} cells over {n_combos} distinct "
          f"(program x policy) combos, {specs[-1].seed + 1} seeds")

    model = run_model_phase(specs, machine)
    print(f"model: {model['wall_seconds']:.1f}s "
          f"({model['throughput_per_sec']:.0f} cells/s, "
          f"{model['per_cell_us']:.0f} us/cell)")

    sim = run_sim_sample(sample, machine)
    print(f"sim:   {sim['per_cell_ms']:.1f} ms/cell cold "
          f"({sim['sampled_combos']} combos sampled, "
          f"max error {max(sim['max_time_error'], sim['max_joules_error']):.4%})")

    speedup = (1e3 * sim["per_cell_ms"]) / model["per_cell_us"]
    print(f"speedup: {speedup:.0f}x per cell (model vs sampled cold sim)")

    validation = run_calibration_validation()
    print(f"calibration grid: {validation['eligible_cells']} eligible cells, "
          f"max error {validation['max_error']:.4%} "
          f"(bound {validation['error_bound']:.0%}); "
          f"golden-grid speedup "
          f"{validation['golden_grid_speedup_per_cell']:.0f}x per cell")

    report = {
        "generated_by": "benchmarks/model_sweep.py",
        "host": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "grid": {
            "cells": len(specs),
            "distinct_combos": n_combos,
            "batch_counts": list(BATCH_COUNTS),
            "shapes": [list(s) for s in SHAPES],
            "num_cores": NUM_CORES,
            "note": "model predictions are seed-independent; the cache is "
            "disabled so every cell pays full prediction compute",
        },
        "model_phase": model,
        "cold_sim_sample": sim,
        "calibration_validation": validation,
        "acceptance": {
            "all_cells_model_served":
                model["model_cells"] == len(specs),
            "speedup_per_cell_vs_cold_sim": speedup,
            "meets_100x": speedup >= 100.0,
            "sampled_errors_within_bounds": (
                max(sim["max_time_error"], sim["max_joules_error"])
                <= MAX_RELATIVE_ERROR
            ),
            "calibration_within_bounds": validation["all_within_bounds"],
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not args.no_check:
        acc = report["acceptance"]
        assert acc["all_cells_model_served"], (
            f"{len(specs) - model['model_cells']} cells were not served "
            "by the model tier"
        )
        assert acc["meets_100x"], (
            f"model only {speedup:.0f}x cheaper per cell than cold sim "
            "(need >= 100x)"
        )
        assert acc["sampled_errors_within_bounds"], (
            "a sampled grid cell exceeded the calibrated error bound"
        )
        assert acc["calibration_within_bounds"], (
            "a calibration-grid cell exceeded the calibrated error bound"
        )
        print("acceptance: all model-served, >=100x, errors in bounds — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
