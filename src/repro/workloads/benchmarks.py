"""The seven Table II benchmarks as calibrated workload specs.

Each benchmark is modelled as the iteration-based task program the paper's
modified-Cilk versions launch: every batch spawns a mix of task classes
whose *relative* mean costs come from the measured costs of the real
kernels in :mod:`repro.kernels` (see
:data:`repro.kernels.profile.REFERENCE_COSTS`), and whose counts are
calibrated so each benchmark's machine utilisation — the slack EEWA
converts into energy savings — spans the paper's observed range (Fig. 6:
energy reductions from 8.7% for the most saturated benchmark to 29.8% for
the most granularity-bound one).

Class naming follows the kernel stages: e.g. BWC batches spawn
``bwt_block`` tasks (one per input block, heavy), ``entropy`` tasks
(Huffman over the transformed block) and ``mtf_rle`` tasks (cheap).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.runtime.task import Batch
from repro.workloads.generators import generate_program
from repro.workloads.periodic import periodic_workload_spec
from repro.workloads.spec import TaskClassSpec, WorkloadSpec
from repro.workloads.synthetic import phased_spec


def bwc_spec() -> WorkloadSpec:
    """Burrows-Wheeler Transforming Compression."""
    return WorkloadSpec(
        name="BWC",
        description="BWT -> MTF -> RLE2 -> Huffman per input block",
        classes=(
            TaskClassSpec("bwt_block", count=8, mean_seconds=38e-3),
            TaskClassSpec("entropy", count=40, mean_seconds=2.1e-3),
            TaskClassSpec("mtf_rle", count=40, mean_seconds=0.35e-3),
        ),
    )


def bzip2_spec() -> WorkloadSpec:
    """Bzip2 file compression (RLE1 + BWT + MTF + RLE2 + Huffman blocks)."""
    return WorkloadSpec(
        name="Bzip-2",
        description="simplified bzip2 pipeline, one block per task",
        classes=(
            TaskClassSpec("compress_block", count=8, mean_seconds=26e-3),
            TaskClassSpec("rle1", count=14, mean_seconds=5.9e-3),
            TaskClassSpec("entropy", count=12, mean_seconds=4.5e-3),
        ),
    )


def dmc_spec() -> WorkloadSpec:
    """Dynamic Markov Coding."""
    return WorkloadSpec(
        name="DMC",
        description="DMC compression of independent blocks + model flushes",
        classes=(
            TaskClassSpec("dmc_block", count=6, mean_seconds=47e-3),
            TaskClassSpec("model_flush", count=24, mean_seconds=4.4e-3),
        ),
    )


def je_spec() -> WorkloadSpec:
    """JPEG Encoding."""
    return WorkloadSpec(
        name="JE",
        description="JPEG tiles: DCT+quant, entropy coding, tile assembly",
        classes=(
            TaskClassSpec("encode_tile", count=6, mean_seconds=26e-3),
            TaskClassSpec("dct_quant", count=32, mean_seconds=3.4e-3),
            TaskClassSpec("entropy", count=20, mean_seconds=2.4e-3),
        ),
    )


def lzw_spec() -> WorkloadSpec:
    """Lempel-Ziv-Welch data compression."""
    return WorkloadSpec(
        name="LZW",
        description="LZW over large chunks plus dictionary-reset segments",
        classes=(
            TaskClassSpec("lzw_chunk", count=9, mean_seconds=28e-3),
            TaskClassSpec("dict_reset", count=40, mean_seconds=1.7e-3),
        ),
    )


def md5_spec() -> WorkloadSpec:
    """MD5 message digest."""
    return WorkloadSpec(
        name="MD5",
        description="MD5 over large independent chunks plus small records",
        classes=(
            TaskClassSpec("md5_chunk", count=7, mean_seconds=45e-3),
            TaskClassSpec("md5_small", count=48, mean_seconds=1.8e-3),
        ),
    )


def sha1_spec() -> WorkloadSpec:
    """SHA-1 cryptographic hash."""
    return WorkloadSpec(
        name="SHA-1",
        description="SHA-1 over large independent chunks plus small records",
        default_batches=10,  # Fig. 8 shows exactly 10 batches
        classes=(
            TaskClassSpec("sha1_chunk", count=5, mean_seconds=52e-3),
            TaskClassSpec("sha1_small", count=44, mean_seconds=1.5e-3),
        ),
    )


def memory_bound_spec() -> WorkloadSpec:
    """A STREAM-like memory-bound application (Section IV-D exercise).

    Not in Table II — the paper excludes memory-bound applications from its
    evaluation; this spec exists to exercise the detection and fallback
    paths (and the regression extension).
    """
    return WorkloadSpec(
        name="STREAM-like",
        description="bandwidth-bound array sweeps; time barely scales with f",
        classes=(
            TaskClassSpec(
                "stream_scan",
                count=6,
                mean_seconds=16e-3,
                miss_intensity=0.05,
                mem_stall_fraction=0.7,
            ),
            TaskClassSpec(
                "stream_copy",
                count=20,
                mean_seconds=3e-3,
                miss_intensity=0.04,
                mem_stall_fraction=0.65,
            ),
        ),
    )


_SPECS = {
    "BWC": bwc_spec,
    "Bzip-2": bzip2_spec,
    "DMC": dmc_spec,
    "JE": je_spec,
    "LZW": lzw_spec,
    "MD5": md5_spec,
    "SHA-1": sha1_spec,
    "STREAM-like": memory_bound_spec,
    # Not in Table II: the batch-to-batch-varying workload used to
    # demonstrate the value of per-batch adaptation (Fig. 7 discussion).
    "DMC-phased": phased_spec,
    # Not in Table II: the strictly periodic zero-jitter mix — the
    # steady-state regime fast-forward and the analytic model target.
    "periodic": periodic_workload_spec,
}

#: The paper's Table II benchmark names, in its order.
BENCHMARK_NAMES = ("BWC", "Bzip-2", "DMC", "JE", "LZW", "MD5", "SHA-1")


def benchmark_spec(name: str) -> WorkloadSpec:
    """Look up a benchmark spec by its Table II name."""
    try:
        return _SPECS[name]()
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; expected one of {sorted(_SPECS)}"
        ) from None


def benchmark_program(
    name: str, *, batches: int | None = None, seed: int = 0
) -> list[Batch]:
    """Generate the program for a named benchmark."""
    return generate_program(benchmark_spec(name), batches=batches, seed=seed)
