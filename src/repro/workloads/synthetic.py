"""Synthetic workloads: micro-scenarios and parametric sweeps.

* :func:`fig1_program` — the two-task dual-core example of the paper's
  Section II (tasks of 2t and t), used by the Fig. 1 experiment.
* :func:`imbalance_sweep_spec` — a parametric two-class workload whose
  heavy-class share is a dial, for studying how EEWA's savings grow with
  workload imbalance (the Fig. 3 "underutilization" discussion).
* :func:`uniform_spec` — perfectly balanced tasks (EEWA should find no
  slack and keep everything fast).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.machine.frequency import GHZ
from repro.runtime.task import Batch, TaskSpec, flat_batch
from repro.workloads.spec import TaskClassSpec, WorkloadSpec


def fig1_program(
    t_seconds: float = 0.1, *, ref_frequency: float = 2.0 * GHZ, batches: int = 2
) -> list[Batch]:
    """Tasks gamma_0 (2t) and gamma_1 (t) per batch, as in Fig. 1.

    Two batches by default: the first is EEWA's all-fast profiling batch,
    the second shows the adjusted schedule.
    """
    if t_seconds <= 0:
        raise WorkloadError("t_seconds must be positive")
    out = []
    for b in range(batches):
        out.append(
            flat_batch(
                b,
                [
                    TaskSpec("gamma0", cpu_cycles=2 * t_seconds * ref_frequency),
                    TaskSpec("gamma1", cpu_cycles=1 * t_seconds * ref_frequency),
                ],
            )
        )
    return out


def imbalance_sweep_spec(
    heavy_tasks: int,
    *,
    heavy_seconds: float = 40e-3,
    light_tasks: int = 48,
    light_seconds: float = 2e-3,
) -> WorkloadSpec:
    """Two-class workload with a tunable number of heavy tasks.

    With few heavy tasks the iteration time is granularity-bound and most
    of the machine idles (big EEWA savings); as ``heavy_tasks`` grows the
    machine saturates and the savings shrink to zero — the knob behind the
    ablation benches.
    """
    if heavy_tasks < 1:
        raise WorkloadError("heavy_tasks must be >= 1")
    return WorkloadSpec(
        name=f"imbalance-{heavy_tasks}",
        description="parametric two-class imbalance sweep",
        classes=(
            TaskClassSpec("heavy", count=heavy_tasks, mean_seconds=heavy_seconds),
            TaskClassSpec("light", count=light_tasks, mean_seconds=light_seconds),
        ),
    )


def phased_spec(
    *,
    amplitude: float = 0.15,
    period: int = 8,
    name: str = "DMC-phased",
) -> WorkloadSpec:
    """A DMC-like workload whose medium class waxes and wanes across batches.

    This is the regime where per-batch frequency re-adjustment (EEWA)
    visibly beats any *fixed* asymmetric configuration (WATS in Fig. 7):
    the medium class's task count follows a slow phase, so the number of
    mid-frequency cores the workload wants changes every few batches. The
    phase is gentle enough that EEWA's one-batch-stale plan tracks it,
    matching the paper's WATS-is-1.05-1.24x-slower observation.
    """
    return WorkloadSpec(
        name=name,
        description="anchor class + phased medium class + small tail",
        default_batches=16,
        classes=(
            TaskClassSpec("dmc_block", count=6, mean_seconds=47e-3),
            TaskClassSpec(
                "refine_pass",
                count=10,
                mean_seconds=16e-3,
                phase_amplitude=amplitude,
                phase_period=period,
            ),
            TaskClassSpec("model_flush", count=20, mean_seconds=4.4e-3),
        ),
    )


def uniform_spec(
    tasks: int = 128, mean_seconds: float = 5e-3, *, jitter_sigma: float = 0.05
) -> WorkloadSpec:
    """One class of near-identical tasks — no exploitable imbalance."""
    return WorkloadSpec(
        name="uniform",
        description="balanced single-class workload (no slack for EEWA)",
        classes=(
            TaskClassSpec(
                "work", count=tasks, mean_seconds=mean_seconds, jitter_sigma=jitter_sigma
            ),
        ),
    )
