"""Steady-state fast-forward: bit-identity, engagement, and bail-outs.

Every test compares a fast-forwarded run (the default) against a full
event-by-event run of the same cell and requires *bit-identical* results —
equality of the full trace fingerprint, not approximate scalars. The cells
that actually engage the replay live on
:func:`~repro.machine.topology.dyadic_test_machine`, where all float
arithmetic is exact; jittered benchmark programs double as negative tests
(the chain never forms, yet results must still match).
"""

import pytest

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.topology import dyadic_test_machine, opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.task import flat_batch
from repro.runtime.wats import WATSScheduler
from repro.sim.engine import simulate
from repro.sim.fingerprint import result_scalars, trace_fingerprint
from repro.workloads.periodic import periodic_batch_specs, periodic_program

POLICIES = ("cilk", "cilk-d", "wats", "eewa")
WATS_LEVELS_8 = [0, 0, 0, 0, 2, 2, 2, 2]
#: Dyadic adjuster costs so EEWA's overhead arithmetic stays float-exact.
DYADIC_OVERHEAD = OverheadModel(base_seconds=2.0**-11, per_cell_seconds=2.0**-17)


def make_policy(name):
    if name == "cilk":
        return CilkScheduler()
    if name == "cilk-d":
        return CilkDScheduler()
    if name == "wats":
        return WATSScheduler(WATS_LEVELS_8)
    return EEWAScheduler(EEWAConfig(overhead_model=DYADIC_OVERHEAD))


def run_pair(program, name, *, seed=11, **kwargs):
    machine = dyadic_test_machine(num_cores=8)
    fast = simulate(program, make_policy(name), machine, seed=seed, **kwargs)
    full = simulate(
        program, make_policy(name), machine, seed=seed,
        fast_forward=False, **kwargs,
    )
    return fast, full


def assert_bit_identical(fast, full):
    assert full.batches_fast_forwarded == 0
    assert result_scalars(fast) == result_scalars(full)
    assert trace_fingerprint(fast) == trace_fingerprint(full)


class TestParity:
    @pytest.mark.parametrize("name", POLICIES)
    def test_periodic_parity(self, name):
        fast, full = run_pair(periodic_program(30, 4, 8), name)
        assert_bit_identical(fast, full)

    @pytest.mark.parametrize("name", POLICIES)
    def test_counters_sum_to_batches_executed(self, name):
        fast, _ = run_pair(periodic_program(30, 4, 8), name)
        assert (
            fast.batches_simulated + fast.batches_fast_forwarded
            == fast.batches_executed
            == 30
        )

    def test_hundred_batch_parity(self):
        """The CI bench-smoke gate: one long cell, with and without
        fast-forward, must agree bit-for-bit (and actually engage)."""
        fast, full = run_pair(periodic_program(100, 4, 8), "eewa")
        assert_bit_identical(fast, full)
        assert fast.batches_fast_forwarded >= 90

    def test_keep_tasks_false_parity(self):
        fast, full = run_pair(
            periodic_program(30, 4, 8), "eewa", keep_tasks=False
        )
        assert not fast.tasks and not full.tasks
        assert_bit_identical(fast, full)
        assert fast.batches_fast_forwarded > 0

    def test_resume_after_odd_batch(self):
        """A one-off divergent batch mid-program breaks the chain; the
        engine must resume full simulation there and re-engage after."""
        program = periodic_program(30, 4, 8)
        program[15] = flat_batch(15, periodic_batch_specs(6, 2))
        fast, full = run_pair(program, "eewa")
        assert_bit_identical(fast, full)
        assert 0 < fast.batches_fast_forwarded < 30
        assert fast.batches_simulated > 3  # re-detection costs extra batches

    def test_jittered_benchmark_parity(self):
        """Jittered per-seed task costs (the paper benchmarks) never form a
        stable chain — and must still be bit-identical with the flag on."""
        from repro.workloads.benchmarks import benchmark_program

        program = benchmark_program("SHA-1", batches=3, seed=23)
        machine = opteron_8380_machine()
        fast = simulate(program, EEWAScheduler(), machine, seed=23)
        full = simulate(
            program, EEWAScheduler(), machine, seed=23, fast_forward=False
        )
        assert fast.batches_fast_forwarded == 0
        assert_bit_identical(fast, full)


class TestEngagement:
    @pytest.mark.parametrize("name", ("eewa", "wats"))
    def test_steady_policies_engage(self, name):
        fast, _ = run_pair(periodic_program(30, 4, 8), name)
        assert fast.batches_fast_forwarded > 0
        assert fast.batches_simulated < 30

    @pytest.mark.parametrize("name", ("cilk", "cilk-d"))
    def test_randomized_placement_never_engages(self, name):
        # cilk draws its placement stream every batch, so no two boundary
        # RNG fingerprints ever match.
        fast, _ = run_pair(periodic_program(30, 4, 8), name)
        assert fast.batches_fast_forwarded == 0

    def test_steal_heavy_cell_never_engages(self):
        # 2 heavy + 20 light on 8 cores forces per-batch victim draws; the
        # RNG advances every batch and the chain never forms.
        fast, full = run_pair(periodic_program(30, 2, 20), "eewa")
        assert fast.batches_fast_forwarded == 0
        assert_bit_identical(fast, full)


class TestBailOuts:
    def test_flag_off_disables_replay(self):
        machine = dyadic_test_machine(num_cores=8)
        result = simulate(
            periodic_program(30, 4, 8), make_policy("eewa"), machine,
            seed=11, fast_forward=False,
        )
        assert result.batches_fast_forwarded == 0
        assert result.batches_simulated == 30

    def test_deep_trace_disables_replay(self):
        machine = dyadic_test_machine(num_cores=8)
        result = simulate(
            periodic_program(30, 4, 8), make_policy("eewa"), machine,
            seed=11, record_task_events=True,
        )
        assert result.batches_fast_forwarded == 0

    def test_power_series_disables_replay(self):
        machine = dyadic_test_machine(num_cores=8)
        result = simulate(
            periodic_program(30, 4, 8), make_policy("eewa"), machine,
            seed=11, record_power_series=True,
        )
        assert result.batches_fast_forwarded == 0
