"""Tests for shared DVFS domains (per-socket frequency planes)."""

import pytest

from repro.core.eewa import EEWAScheduler
from repro.errors import ConfigurationError
from repro.machine.topology import MachineConfig, opteron_8380_machine, small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.policy import BatchAdjustment, RunTask, SchedulerPolicy, Wait
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import Simulator, simulate
from repro.workloads.benchmarks import benchmark_program

REF = 2.5e9


class TestConfigValidation:
    def test_domains_must_partition(self):
        base = small_test_machine(num_cores=4)
        with pytest.raises(ConfigurationError):
            MachineConfig(
                num_cores=4, scale=base.scale, power=base.power,
                dvfs_domains=((0, 1), (1, 2, 3)),  # core 1 twice, overlap
            )
        with pytest.raises(ConfigurationError):
            MachineConfig(
                num_cores=4, scale=base.scale, power=base.power,
                dvfs_domains=((0, 1),),  # cores 2,3 missing
            )

    def test_per_socket_preset(self):
        machine = opteron_8380_machine(per_socket_dvfs=True)
        assert machine.dvfs_domains == (
            (0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15),
        )

    def test_per_socket_needs_multiple_of_four(self):
        with pytest.raises(ConfigurationError):
            opteron_8380_machine(num_cores=6, per_socket_dvfs=True)


class TestDomainCoercion:
    def test_fastest_request_wins_the_plane(self):
        """A plan wanting mixed levels inside one socket runs the whole
        socket at the fastest of them."""
        machine = opteron_8380_machine(per_socket_dvfs=True)
        program = benchmark_program("SHA-1", batches=6, seed=11)
        result = simulate(program, EEWAScheduler(), machine, seed=11)
        for hist in result.trace.level_histograms()[1:]:
            # With quad-core planes, every level count is a multiple of 4.
            assert all(c % 4 == 0 for c in hist), hist

    def test_domain_reduces_but_preserves_savings(self):
        program = benchmark_program("SHA-1", batches=8, seed=11)
        fine = opteron_8380_machine()
        coarse = opteron_8380_machine(per_socket_dvfs=True)
        cilk_f = simulate(program, CilkScheduler(), fine, seed=11)
        eewa_f = simulate(program, EEWAScheduler(), fine, seed=11)
        cilk_c = simulate(program, CilkScheduler(), coarse, seed=11)
        eewa_c = simulate(program, EEWAScheduler(), coarse, seed=11)
        saving_fine = 1 - eewa_f.total_joules / cilk_f.total_joules
        saving_coarse = 1 - eewa_c.total_joules / cilk_c.total_joules
        assert 0.0 < saving_coarse < saving_fine

    def test_requested_vs_effective_levels(self):
        """Cilk-D's drop requests get pinned by a busy sibling."""
        machine = small_test_machine(num_cores=2)
        machine = MachineConfig(
            num_cores=2, scale=machine.scale, power=machine.power,
            dvfs_domains=((0, 1),),
        )
        # One long task (keeps core 0 busy and the plane fast) and nothing
        # else: core 1 goes idle and requests the drop.
        program = [flat_batch(0, [TaskSpec("w", cpu_cycles=0.3 * 2.0e9)])]
        policy = CilkDScheduler(idle_grace_s=0.01)
        sim = Simulator(machine, policy, seed=1)
        result = sim.run(program)
        # The drop was requested but the plane stayed fast while running;
        # the run completes without livelock and the task ran at F0.
        assert result.tasks_executed == 1
        assert result.tasks[0].executed_level == 0

    def test_mid_run_retune_preserves_work(self):
        """When a sibling's request drags a RUNNING core to a new level,
        the task still completes with the right amount of work."""
        machine = small_test_machine(num_cores=2)
        machine = MachineConfig(
            num_cores=2, scale=machine.scale, power=machine.power,
            dvfs_domains=((0, 1),), dvfs_latency_s=0.0,
        )

        class PinThenRelease(SchedulerPolicy):
            """Core 0 *requests* the slow level but is pinned fast by core 1;
            core 1 releases the plane at t=0.05 s, dragging the running
            core 0 down mid-task."""

            name = "pin-then-release"

            def on_program_start(self):
                self._core0_requested = False
                self._core1_released = False
                return BatchAdjustment(frequency_levels=[0, 0])

            def on_batch_start(self, batch, tasks):
                self._tasks = list(tasks)

            def next_action(self, core_id):
                from repro.runtime.policy import SetFrequency

                if core_id == 0:
                    if not self._core0_requested:
                        self._core0_requested = True
                        return SetFrequency(1)  # absorbed: core 1 pins F0
                    if self._tasks:
                        return RunTask(self._tasks.pop())
                    return Wait()
                if not self._core1_released:
                    if self._require_ctx().now() < 0.05:
                        return Wait(retry_after=0.05 - self._require_ctx().now())
                    self._core1_released = True
                    return SetFrequency(1)  # plane drops; core 0 retunes
                return Wait()

        # 0.2 s of F0 work on core 0 starting at t=0 at the (pinned) fast
        # level; at t=0.05 the plane drops to 1.0 GHz: 0.15 s of F0-work
        # remains, now taking 0.30 s -> finish at ~0.35 s.
        program = [flat_batch(0, [TaskSpec("w", cpu_cycles=0.2 * 2.0e9)])]
        result = simulate(program, PinThenRelease(), machine, seed=0)
        assert result.tasks_executed == 1
        assert result.total_time == pytest.approx(0.35, rel=0.03)
        task = result.tasks[0]
        assert task.elapsed == pytest.approx(0.35, rel=0.03)

    def test_determinism_with_domains(self):
        machine = opteron_8380_machine(per_socket_dvfs=True)
        program = benchmark_program("DMC", batches=4, seed=5)
        a = simulate(program, EEWAScheduler(), machine, seed=5)
        b = simulate(program, EEWAScheduler(), machine, seed=5)
        assert a.total_joules == b.total_joules
        assert a.total_time == b.total_time
