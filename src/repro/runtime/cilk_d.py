"""Cilk-D: Cilk plus naive DVFS on idle cores.

The paper's second baseline (Section IV-A): "In Cilk-D, if a core finds
that there is no task in all the task pools, the core is scaled down to run
at the lowest frequency." When work reappears the core scales back up to
``F_0`` before executing.

Cilk-D is not workload-aware: it only harvests tail-idle energy, after a
realistic detection delay — a real 2014 runtime observed idleness through
repeated failed steal scans and the OS DVFS path (the Linux ondemand
governor of that era sampled every ~10 ms), so a core does not drop its
P-state the instant a queue empties. ``idle_grace_s`` models that reaction
time; it is also what separates Cilk-D from EEWA, which knows *ahead of the
batch* which cores can run slow (the paper reports Cilk-D saving 6.7-12.8%
versus Cilk while EEWA saves a further 2.3-18.4% on top).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.runtime.cilk import CilkScheduler
from repro.runtime.policy import Action, BatchAdjustment, RunTask, SetFrequency, Wait
from repro.runtime.task import Batch, Task

#: Default idle-detection delay before a core drops to the lowest P-state.
DEFAULT_IDLE_GRACE_S = 10e-3


class CilkDScheduler(CilkScheduler):
    """Random work-stealing; persistently idle cores drop to ``F_{r-1}``."""

    name = "cilk-d"

    def __init__(
        self,
        placement: str = "round_robin",
        *,
        idle_grace_s: float = DEFAULT_IDLE_GRACE_S,
    ) -> None:
        super().__init__(placement)
        if idle_grace_s < 0:
            raise ValueError("idle_grace_s must be non-negative")
        self._idle_grace = idle_grace_s
        self._idle_since: dict[int, Optional[float]] = {}

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        super().on_batch_start(batch, tasks)
        # New work everywhere: idle clocks restart.
        self._idle_since.clear()

    def next_action(self, core_id: int) -> Action:
        ctx = self._require_ctx()
        grid = self._grid
        assert grid is not None

        work_visible = (
            grid.local_len(core_id, 0) > 0 or grid.queued_in_pool_index(0) > 0
        )
        # Decide on the *requested* level: under shared DVFS domains the
        # effective level can be pinned fast by a sibling, and re-requesting
        # the same target forever would livelock.
        level = ctx.requested_level(core_id)
        # Per-core ladder: on a heterogeneous machine each core type has
        # its own slowest P-state (identical to the machine scale's on
        # homogeneous ones, where ladder_of returns the scale itself).
        slowest = ctx.machine.ladder_of(core_id).slowest_index

        if work_visible:
            self._idle_since[core_id] = None
            if level != 0:
                # Scale back up before touching the work (the transition
                # costs DVFS latency; the task may be gone when we return).
                self.stats.extra["dvfs_raises"] = self.stats.extra.get("dvfs_raises", 0) + 1
                return SetFrequency(0)
            task = grid.pop_local(core_id, 0)
            if task is not None:
                self.stats.local_pops += 1
                self.stats.tasks_executed += 1
                return RunTask(task, acquire_cycles=ctx.machine.pop_cycles)
            victims = grid.victims_with_work(0, exclude=core_id)
            if victims:
                victim = ctx.rng_choice("cilk.victim", victims)
                stolen = grid.steal(victim, 0)
                if stolen is not None:
                    self.stats.tasks_stolen += 1
                    self.stats.tasks_executed += 1
                    return RunTask(stolen, acquire_cycles=ctx.machine.steal_cycles)
            # Visible work evaporated between the check and the steal.

        if level == slowest:
            self.stats.failed_scans += 1
            return Wait(scan_cycles=ctx.machine.failed_scan_cycles)

        now = ctx.now()
        idle_since = self._idle_since.get(core_id)
        if idle_since is None:
            self._idle_since[core_id] = now
            idle_since = now
        remaining = self._idle_grace - (now - idle_since)
        # Sub-nanosecond residuals would schedule a same-timestamp retry
        # forever; treat the grace period as elapsed.
        if remaining <= 1e-9:
            self.stats.extra["dvfs_drops"] = self.stats.extra.get("dvfs_drops", 0) + 1
            self._idle_since[core_id] = None
            return SetFrequency(slowest)
        self.stats.failed_scans += 1
        return Wait(scan_cycles=ctx.machine.failed_scan_cycles, retry_after=remaining)

    def on_program_start(self) -> BatchAdjustment:
        self._idle_since.clear()
        return super().on_program_start()

    def state_fingerprint(self) -> Optional[str]:
        """Cilk fingerprint plus the idle-grace parameter.

        ``_idle_since`` is deliberately excluded: it is cleared in
        ``on_batch_start`` before any read in the new batch, so entries left
        over at a boundary can never influence a future decision. (A timed
        ``Wait`` retry crossing a boundary leaves a CORE_READY event in the
        heap, which already makes that boundary ineligible for
        fast-forward.)
        """
        base = super().state_fingerprint()
        if base is None:
            return None
        return f"{base}:grace={self._idle_grace!r}"
