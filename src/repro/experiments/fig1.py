"""Fig. 1 — the four dual-core schedules of Section II.

The paper motivates EEWA with two tasks (costing ``2t`` and ``t`` at the
fast frequency) on a dual-core machine whose cores run at ``f_0`` or
``0.5 f_0``. This experiment does both halves:

* :func:`analytic_schedules` evaluates the paper's four schedules (a)-(d)
  under our power model, confirming the ordering the paper derives —
  (b) saves energy at unchanged time, (c) and (d) lose on both axes;
* :func:`run_fig1` runs the actual EEWA scheduler on that program and
  checks it lands on schedule (b): the slow core takes the small task after
  the profiling batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.frequency import FrequencyScale
from repro.machine.power import calibrated_power_model
from repro.machine.topology import MachineConfig
from repro.sim.engine import SimResult, simulate
from repro.workloads.synthetic import fig1_program


def fig1_machine() -> MachineConfig:
    """Dual-core machine with levels ``{f_0, 0.5 f_0}``."""
    scale = FrequencyScale((2.0e9, 1.0e9))
    power = calibrated_power_model(
        scale,
        top_core_busy_watts=20.0,
        core_idle_watts=2.0,
        machine_base_watts=0.0,
        v_min=1.0,
        v_max=1.3,
    )
    return MachineConfig(num_cores=2, scale=scale, power=power)


@dataclass(frozen=True)
class Schedule:
    """One of the paper's four schedules: per-core (level, busy_seconds)."""

    label: str
    finish_time: float
    energy: float


def analytic_schedules(t: float = 0.1) -> list[Schedule]:
    """Evaluate schedules (a)-(d) exactly under the power model.

    Core 0 always runs gamma_0 (2t at f_0); core 1 runs gamma_1 (t at f_0).
    Idle-but-spinning time is billed at the core's busy power, matching the
    paper's 'cores busily steal until the application terminates'.
    """
    machine = fig1_machine()
    p_fast = machine.power.busy_power(machine.scale[0])
    p_slow = machine.power.busy_power(machine.scale[1])

    # (a) both fast: finish max(2t, t); both spin-burn until the end.
    a = Schedule("a: both f0", 2 * t, (p_fast + p_fast) * 2 * t)
    # (b) core1 at 0.5 f0 runs gamma_1 in 2t: same finish, less power.
    b = Schedule("b: c1 slow, small task", 2 * t, (p_fast + p_slow) * 2 * t)
    # (c) core1 slow but runs gamma_0 (the BIG task) at half speed: 4t.
    c = Schedule("c: c1 slow, big task", 4 * t, (p_fast + p_slow) * 4 * t)
    # (d) both slow: gamma_0 takes 4t.
    d = Schedule("d: both slow", 4 * t, (p_slow + p_slow) * 4 * t)
    return [a, b, c, d]


def run_fig1(
    t: float = 0.1,
    batches: int = 3,
    seed: int = 0,
    *,
    parallel: bool = False,
    cache_dir: str | None = None,
) -> SimResult:
    """Run EEWA on the two-task program; after profiling it should pick (b).

    The paper's example is an exact-fit idealisation — gamma_1 at the half
    frequency finishes precisely at ``T`` — so the jitter headroom is
    disabled here (the synthetic tasks have no jitter to guard against).

    ``parallel=True`` routes the (single) run through the content-addressed
    result cache; the result is identical.
    """
    machine = fig1_machine()
    program = fig1_program(t, ref_frequency=machine.scale.fastest, batches=batches)
    config = EEWAConfig(headroom=0.0)
    if parallel:
        from repro.experiments.parallel import CellSpec, ParallelRunner

        runner = ParallelRunner(
            machine=machine, workers=0,
            cache_dir=cache_dir if cache_dir is not None else ".repro-cache",
        )
        (outcome,) = runner.run_cells(
            [
                CellSpec(
                    benchmark="fig1", policy="eewa", seed=seed,
                    eewa_config=config, program=tuple(program),
                )
            ]
        )
        return outcome.result
    return simulate(program, EEWAScheduler(config), machine, seed=seed)


def fig1_rows(t: float = 0.1) -> list[tuple[str, float, float]]:
    """(label, time, energy) rows: the four analytic schedules + EEWA."""
    rows = [(s.label, s.finish_time, s.energy) for s in analytic_schedules(t)]
    result = run_fig1(t)
    # Per-batch time/energy of the final (adjusted) batch.
    last = result.trace.batches[-1]
    per_batch_energy = result.total_joules / result.batches_executed
    rows.append(("eewa (simulated, steady batch)", last.duration, per_batch_energy))
    return rows
