"""Plain-text table/series rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep the formatting consistent across exhibits.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Fixed-width text table."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], *, float_fmt: str = "{:.3f}"
) -> str:
    """One figure series as ``name: x=y, x=y, ...``."""
    pairs = ", ".join(f"{x}={float_fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_percent(value: float) -> str:
    sign = "+" if value >= 0 else ""
    return f"{sign}{value:.1f}%"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str | None = None,
    width: int = 50,
    max_value: float | None = None,
    value_fmt: str = "{:.3f}",
) -> str:
    """Horizontal ASCII bar chart — a terminal rendering of a figure panel.

    >>> print(bar_chart(["a", "b"], [1.0, 0.5], width=4))
    a  #### 1.000
    b  ##   0.500
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title or ""
    top = max_value if max_value is not None else max(values)
    if top <= 0:
        top = 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = max(0, min(width, round(width * value / top)))
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{str(label).ljust(label_w)}  {bar} {value_fmt.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
    width: int = 40,
    value_fmt: str = "{:.3f}",
) -> str:
    """Multiple series per label, one bar row each (Fig. 6-style panels)."""
    if not series:
        raise ValueError("need at least one series")
    for vals in series.values():
        if len(vals) != len(labels):
            raise ValueError("every series must align with labels")
    top = max(max(vals) for vals in series.values())
    if top <= 0:
        top = 1.0
    label_w = max(len(str(l)) for l in labels)
    series_w = max(len(name) for name in series)
    lines = [title] if title else []
    for i, label in enumerate(labels):
        for j, (name, vals) in enumerate(series.items()):
            value = vals[i]
            filled = max(0, min(width, round(width * value / top)))
            prefix = str(label).ljust(label_w) if j == 0 else " " * label_w
            lines.append(
                f"{prefix}  {name.ljust(series_w)} "
                f"{'#' * filled}{' ' * (width - filled)} {value_fmt.format(value)}"
            )
    return "\n".join(lines)


def frequency_timeline(
    histograms: Sequence[Sequence[int]],
    frequencies_ghz: Sequence[float],
    *,
    title: str | None = None,
) -> str:
    """Fig. 8-style stacked timeline: one column per batch, one glyph per
    core, fastest level at the top.

    Levels render as digits (0 = fastest); reading down a column shows the
    machine's configuration for that batch.
    """
    if not histograms:
        return title or ""
    lines = [title] if title else []
    num_cores = sum(histograms[0])
    for row in range(num_cores):
        glyphs = []
        for hist in histograms:
            # Expand the histogram into per-core level glyphs, fastest first.
            expanded = [str(lv) for lv, n in enumerate(hist) for _ in range(n)]
            glyphs.append(expanded[row] if row < len(expanded) else " ")
        lines.append("core %2d | %s" % (row, " ".join(glyphs)))
    lines.append("batch     " + " ".join(f"{i+1:<1d}" if i < 9 else "+" for i in range(len(histograms))))
    lines.append(
        "levels: "
        + ", ".join(f"{j}={f:.1f}GHz" for j, f in enumerate(frequencies_ghz))
    )
    return "\n".join(lines)
