#!/usr/bin/env python3
"""Memory-bound applications: detection, fallback, and the regression fix.

Section IV-D of the paper: Eq. 1's workload normalisation assumes execution
time scales inversely with frequency — false for memory-bound tasks. EEWA
detects them via cache-miss intensity in the first batch and falls back to
plain work-stealing. The paper's *future work* proposes learning a per-class
``t(f)`` model instead; this repository implements that as
``MemoryBoundMode.REGRESSION``.

This example runs a STREAM-like bandwidth-bound workload under:

* EEWA with detection disabled (IGNORE) — shows the damage the naive
  assumption does;
* paper-faithful FALLBACK — safe, but saves nothing;
* the REGRESSION extension — scales frequencies using the fitted model.

Usage:
    python examples/memory_bound.py
"""

from __future__ import annotations

from repro import CilkScheduler, EEWAScheduler, opteron_8380_machine, simulate
from repro.core import EEWAConfig, MemoryBoundMode
from repro.workloads import generate_program, memory_bound_spec


def main() -> None:
    machine = opteron_8380_machine()
    spec = memory_bound_spec()
    program = generate_program(spec, batches=10, seed=3)

    print(f"workload: {spec.name} — miss intensities "
          f"{[c.miss_intensity for c in spec.classes]}, "
          f"stall fractions {[c.mem_stall_fraction for c in spec.classes]}\n")

    cilk = simulate(program, CilkScheduler(), machine, seed=3)
    runs = {"cilk (baseline)": cilk}
    for mode in (MemoryBoundMode.IGNORE, MemoryBoundMode.FALLBACK,
                 MemoryBoundMode.REGRESSION):
        policy = EEWAScheduler(EEWAConfig(memory_bound_mode=mode))
        runs[f"eewa/{mode.value}"] = simulate(program, policy, machine, seed=3)

    print(f"{'scheduler':18s} {'time (ms)':>10s} {'energy (J)':>11s} "
          f"{'dT%':>7s} {'dE%':>7s}")
    for name, r in runs.items():
        dt = 100 * (r.total_time / cilk.total_time - 1)
        de = 100 * (r.total_joules / cilk.total_joules - 1)
        print(f"{name:18s} {r.total_time*1e3:10.1f} {r.total_joules:11.2f} "
              f"{dt:+7.1f} {de:+7.1f}")

    fallback = runs["eewa/fallback"]
    fraction = fallback.policy_stats.get("memory_bound_fraction", 0.0)
    print(f"\ndetector: {fraction:.0%} of first-batch tasks were memory-bound "
          f"-> application classified memory-bound "
          f"(fallback engaged: {bool(fallback.policy_stats.get('fallback_memory_bound'))})")

    regression = runs["eewa/regression"]
    print("\nregression-mode per-batch configs (paper future work):")
    for i, hist in enumerate(regression.trace.level_histograms()):
        print(f"  batch {i:2d}: {hist}")


if __name__ == "__main__":
    main()
