"""Frequency scales for DVFS-capable cores.

The paper assumes each core can run at ``r`` discrete frequencies
``F_0 > F_1 > ... > F_{r-1}`` (Section III). Since the operating-point
generalisation (:mod:`repro.machine.operating_point`) the canonical
representation of that ordered set is a one-type
:class:`~repro.machine.operating_point.OperatingPointSpace`;
:class:`FrequencyScale` survives at its historical import path as a thin
**deprecated** alias over it — constructing one emits a
``DeprecationWarning`` (the same pattern as the ``cilk_d`` policy alias)
and behaves exactly like :func:`repro.machine.operating_point.homogeneous_space`.

Frequencies are stored in hertz as floats. The evaluation platform of the
paper (AMD Opteron 8380) exposes 2.5, 1.8, 1.3 and 0.8 GHz; see
:func:`opteron_8380_scale`.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.errors import ConfigurationError
from repro.machine.operating_point import (
    DEFAULT_CORE_TYPE,
    OperatingPoint,
    OperatingPointSpace,
    homogeneous_space,
)

GHZ = 1e9
"""Multiplier converting GHz to Hz."""


class FrequencyScale(OperatingPointSpace):
    """Deprecated homogeneous alias: an ordered, descending frequency set.

    Parameters
    ----------
    levels:
        Frequencies in hertz, strictly descending: ``levels[0]`` is the
        fastest frequency ``F_0`` and ``levels[-1]`` the slowest
        ``F_{r-1}``.

    .. deprecated::
        Use :func:`repro.machine.operating_point.homogeneous_space` (or a
        full :class:`~repro.machine.operating_point.OperatingPointSpace`
        for heterogeneous machines) instead. This alias keeps existing
        examples and third-party scenario specs importable.
    """

    def __init__(self, levels: Sequence[float]) -> None:
        warnings.warn(
            "FrequencyScale is deprecated; use "
            "repro.machine.operating_point.homogeneous_space(levels) "
            "(or an OperatingPointSpace for heterogeneous machines)",
            DeprecationWarning,
            stacklevel=2,
        )
        levels = tuple(float(f) for f in levels)
        if not levels:
            raise ConfigurationError("a frequency scale needs at least one level")
        if any(f <= 0.0 for f in levels):
            raise ConfigurationError(f"frequencies must be positive, got {levels}")
        if any(a <= b for a, b in zip(levels, levels[1:])):
            raise ConfigurationError(
                f"frequencies must be strictly descending (F_0 fastest), got {levels}"
            )
        super().__init__(
            tuple(OperatingPoint(DEFAULT_CORE_TYPE, f) for f in levels)
        )


def opteron_8380_scale() -> OperatingPointSpace:
    """The frequency ladder of the paper's AMD Opteron 8380 testbed.

    Section IV: "each core can run at four frequencies: 2.5GHz, 1.8GHz,
    1.3GHz and 0.8GHz".
    """
    return homogeneous_space((2.5 * GHZ, 1.8 * GHZ, 1.3 * GHZ, 0.8 * GHZ))


def uniform_scale(
    fastest_ghz: float, steps: int, *, ratio: float = 0.75
) -> OperatingPointSpace:
    """A geometric frequency ladder, convenient for synthetic machines."""
    if steps < 1:
        raise ConfigurationError("steps must be >= 1")
    if not 0.0 < ratio < 1.0:
        raise ConfigurationError("ratio must be in (0, 1)")
    return homogeneous_space(
        tuple(fastest_ghz * GHZ * ratio**i for i in range(steps))
    )
