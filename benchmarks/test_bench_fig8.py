"""Fig. 8 bench — cores per frequency across the 10 batches of SHA-1.

Paper shape targets: batch 1 all 16 cores at 2.5 GHz; afterwards a stable
configuration with a handful of fast cores (paper: 5) and the majority at
0.8 GHz (paper: 11).
"""

from conftest import save_exhibit

from repro.experiments.fig8 import run_fig8


def test_bench_fig8(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig8(batches=10, seed=11), rounds=1, iterations=1
    )
    save_exhibit(results_dir, "fig8", result.table())

    hists = result.histograms
    benchmark.extra_info["histograms"] = [list(h) for h in hists]

    assert len(hists) == 10
    # Batch 1: profiling at full speed.
    assert hists[0] == (16, 0, 0, 0)
    # Later batches: a few fast cores, majority at the lowest frequency.
    for hist in hists[1:]:
        assert sum(hist) == 16
        assert 3 <= hist[0] <= 9, hist
        assert hist[3] >= 7, hist
    # Configuration is stable after the first adjustment (paper: identical
    # from the 3rd batch on).
    assert len(set(hists[2:])) <= 2
