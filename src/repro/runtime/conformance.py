"""Policy conformance harness.

A downstream user writing a custom :class:`SchedulerPolicy` can validate it
against the runtime contract in one call::

    from repro.runtime.conformance import check_policy
    report = check_policy(lambda: MyPolicy())
    assert report.ok, report.failures

The battery exercises the invariants the engine relies on:

1. every task executes exactly once, across flat and imbalanced batches;
2. the policy survives multi-batch programs and empty-steal tails;
3. nested spawns (if the policy claims support) are scheduled;
4. runs are deterministic for a fixed seed;
5. frequency requests stay within the machine's ladder;
6. steady-state fast-forward reproduces full simulation bit-identically
   (which also audits the policy's ``state_fingerprint`` for soundness);
7. the policy completes 100% of tasks under every mix of the standard
   fault matrix (:data:`repro.faults.matrix.STANDARD_FAULT_MATRIX`),
   with its energy/makespan degradation vs the fault-free baseline
   reported in :attr:`ConformanceReport.fault_degradation`;
8. operating-point parity: a homogeneous machine expressed as an explicit
   one-type operating-point space (``core_types``/``type_powers`` set)
   reproduces the flat-ladder run bit-identically — the generalised
   heterogeneous code paths must be exact supersets of the paper's
   homogeneous ones;
9. model parity: wherever the analytic companion model
   (:mod:`repro.model`) offers a prediction for the policy, its makespan
   and energy agree with the simulator within the calibrated error bound
   (:data:`repro.model.bounds.MAX_RELATIVE_ERROR`); policies without an
   analytic steady state decline and pass vacuously.

``check_policy(..., deep=True)`` additionally replays a deep task-event
trace through the race detector (:mod:`repro.checks.races`): exactly-once
execution via vector clocks, lost-task detection, and — for c-group
policies — conformance to the rob-the-weaker-first stealing order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.machine.topology import (
    MachineConfig,
    dyadic_test_machine,
    small_test_machine,
)
from repro.runtime.policy import SchedulerPolicy
from repro.runtime.task import Batch, TaskSpec, flat_batch
from repro.sim.engine import simulate

PolicyFactory = Callable[[], SchedulerPolicy]

_REF = 2.0e9  # fastest level of the default test machine


@dataclass
class ConformanceReport:
    """Outcome of :func:`check_policy`."""

    policy_name: str
    checks_run: int = 0
    failures: list[str] = field(default_factory=list)
    #: fault-mix name -> (time_ratio, energy_ratio) vs the fault-free
    #: baseline, filled by the fault-matrix check.
    fault_degradation: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def _flat_program(batches: int, sizes: list[float]) -> list[Batch]:
    return [
        flat_batch(i, [TaskSpec(f"c{j % 3}", cpu_cycles=s * _REF) for j, s in enumerate(sizes)])
        for i in range(batches)
    ]


def _nested_program() -> list[Batch]:
    child = TaskSpec("child", cpu_cycles=0.01 * _REF)
    parent = TaskSpec("parent", cpu_cycles=0.02 * _REF, children=(child, child))
    return [flat_batch(0, [parent, parent])]


def check_policy(
    factory: PolicyFactory,
    *,
    machine: MachineConfig | None = None,
    check_spawns: bool = True,
    deep: bool = False,
) -> ConformanceReport:
    """Run the conformance battery against a policy factory.

    ``factory`` must return a *fresh* policy instance per call (policies
    are stateful and single-use). Set ``check_spawns=False`` for policies
    that legitimately do not support nested spawns. ``deep=True`` adds the
    trace-replay race check (slower: records every task event).
    """
    if machine is None:
        machine = small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))
    report = ConformanceReport(policy_name=factory().name)

    def run_check(label: str, fn: Callable[[], None]) -> None:
        report.checks_run += 1
        try:
            fn()
        except AssertionError as exc:
            report.failures.append(f"{label}: {exc}")
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            report.failures.append(f"{label}: raised {type(exc).__name__}: {exc}")

    def balanced() -> None:
        program = _flat_program(2, [0.01] * 12)
        result = simulate(program, factory(), machine, seed=3)
        assert result.tasks_executed == 24, f"executed {result.tasks_executed}/24"
        ids = [t.task_id for t in result.tasks]
        assert len(set(ids)) == len(ids), "duplicate task execution"

    def imbalanced() -> None:
        program = _flat_program(2, [0.001] * 10 + [0.08])
        result = simulate(program, factory(), machine, seed=3)
        assert result.tasks_executed == 22, f"executed {result.tasks_executed}/22"
        # The big task bounds the batch; gross over-serialisation fails.
        assert result.total_time < 0.5, f"took {result.total_time:.3f}s"

    def single_task_tail() -> None:
        program = _flat_program(3, [0.02])
        result = simulate(program, factory(), machine, seed=3)
        assert result.tasks_executed == 3

    def spawns() -> None:
        result = simulate(_nested_program(), factory(), machine, seed=3)
        assert result.tasks_executed == 6, f"executed {result.tasks_executed}/6"

    def deterministic() -> None:
        program = _flat_program(3, [0.004] * 9 + [0.03])
        a = simulate(program, factory(), machine, seed=7)
        b = simulate(program, factory(), machine, seed=7)
        assert a.total_time == b.total_time, "time differs across identical runs"
        assert a.total_joules == b.total_joules, "energy differs across identical runs"

    def frequency_sanity() -> None:
        program = _flat_program(4, [0.003] * 8 + [0.05])
        result = simulate(program, factory(), machine, seed=5)
        r = machine.r
        for task in result.tasks:
            assert task.executed_level is not None and 0 <= task.executed_level < r
        for level, secs in result.meter.seconds_by_level().items():
            assert 0 <= level < r and secs >= 0

    def fast_forward_parity() -> None:
        # A strictly periodic program on a dyadic machine is the shape
        # that engages the engine's steady-state fast-forward (when the
        # policy exposes a sound ``state_fingerprint``); the two runs must
        # be bit-identical either way. Same core count and ladder depth as
        # the battery machine so factory-baked level vectors stay valid.
        # A heterogeneous battery machine (dyadic by construction of the
        # big.LITTLE preset) is exercised directly, so fast-forward parity
        # is also proven across core types.
        from repro.sim.fingerprint import trace_fingerprint
        from repro.workloads.periodic import periodic_program

        dyadic = (
            machine
            if machine.is_heterogeneous
            else dyadic_test_machine(num_cores=machine.num_cores, r=machine.r)
        )
        program = periodic_program(12, 2, 4)
        full = simulate(
            program, factory(), dyadic, seed=11, fast_forward=False
        )
        fast = simulate(program, factory(), dyadic, seed=11)
        assert full.batches_fast_forwarded == 0, "fast_forward=False replayed"
        assert (
            fast.batches_simulated + fast.batches_fast_forwarded
            == fast.batches_executed
        ), "batch counters do not sum to batches_executed"
        assert trace_fingerprint(fast) == trace_fingerprint(full), (
            "fast-forward diverged from full simulation "
            f"({fast.batches_fast_forwarded} batches replayed)"
        )

    def fault_matrix() -> None:
        # Imported here: repro.faults.matrix imports scenario modules,
        # which import runtime modules — module-level would be circular.
        from repro.faults.matrix import policy_resilience

        rows = policy_resilience(factory, machine=machine)
        for row in rows:
            report.fault_degradation[row.fault] = (
                row.time_ratio,
                row.energy_ratio,
            )
            assert row.completed, (
                f"lost tasks under fault mix '{row.fault}' "
                f"({row.tasks_executed}/{row.tasks_expected})"
            )

    def operating_point_parity() -> None:
        # Check #9: the heterogeneous machinery (explicit core_types /
        # type_powers, per-type search budgets, op-indexed c-groups) must
        # be an exact superset of the flat-ladder paths. A homogeneous
        # dyadic machine re-expressed as a one-type operating-point space
        # has to reproduce the flat run bit-for-bit.
        from dataclasses import replace

        from repro.sim.fingerprint import trace_fingerprint

        base = dyadic_test_machine(num_cores=machine.num_cores, r=machine.r)
        only = base.scale.types[0]
        twin = replace(
            base,
            core_types=((only, base.num_cores),),
            type_powers=((only, base.power),),
        )
        assert twin.is_heterogeneous is False
        program = _flat_program(3, [0.004] * 9 + [0.03])
        flat = simulate(program, factory(), base, seed=7)
        typed = simulate(program, factory(), twin, seed=7)
        assert trace_fingerprint(flat) == trace_fingerprint(typed), (
            "explicit one-type operating-point metadata changed behaviour"
        )

    def model_parity() -> None:
        # Check #10: the analytic companion model must agree with the
        # simulator within its calibrated bound wherever it offers a
        # prediction. The model predicts the *registry* configuration of
        # the policy's name, so the simulation side builds through the
        # factory — for the shipped registry-default policies the two
        # coincide; unregistered or analytically inexpressible policies
        # decline the prediction and the check passes vacuously.
        from repro.model.bounds import MAX_RELATIVE_ERROR, classify_cell
        from repro.model.predict import predict_cell

        program = _flat_program(3, [0.004] * 9 + [0.03])
        if not classify_cell(tuple(program), report.policy_name, machine):
            # Outside the calibrated envelope (no analytic form, hetero
            # battery machine, …): fidelity="auto" would simulate this
            # cell, so there is no promise to check.
            return
        predicted = predict_cell(tuple(program), report.policy_name, machine)
        if predicted is None:
            return
        sim = simulate(program, factory(), machine, seed=7)
        time_err = abs(predicted.total_time - sim.total_time) / sim.total_time
        joule_err = (
            abs(predicted.total_joules - sim.total_joules) / sim.total_joules
        )
        assert time_err <= MAX_RELATIVE_ERROR, (
            f"model makespan off by {time_err:.2%} "
            f"(bound {MAX_RELATIVE_ERROR:.0%})"
        )
        assert joule_err <= MAX_RELATIVE_ERROR, (
            f"model energy off by {joule_err:.2%} "
            f"(bound {MAX_RELATIVE_ERROR:.0%})"
        )

    def race_free() -> None:
        # Imported here: repro.checks imports runtime modules, so a
        # module-level import would be circular.
        from repro.checks.races import find_trace_races
        from repro.sim.engine import Simulator

        program = _flat_program(2, [0.004] * 9 + [0.03])
        sim = Simulator(machine, factory(), seed=3, record_task_events=True)
        try:
            sim.run(program)
        finally:
            findings = find_trace_races(
                sim.trace, label=f"races({report.policy_name})"
            )
            assert not findings, "; ".join(f.message for f in findings)

    run_check("balanced-batches", balanced)
    run_check("imbalanced-batch", imbalanced)
    run_check("single-task-tail", single_task_tail)
    if check_spawns:
        run_check("nested-spawns", spawns)
    run_check("determinism", deterministic)
    run_check("frequency-sanity", frequency_sanity)
    run_check("fast-forward-parity", fast_forward_parity)
    run_check("fault-matrix", fault_matrix)
    run_check("operating-point-parity", operating_point_parity)
    run_check("model-parity", model_parity)
    if deep:
        run_check("race-detection", race_free)
    return report


def check_registered_policies(
    *,
    machine: MachineConfig | None = None,
    deep: bool = False,
) -> list[ConformanceReport]:
    """Run the conformance battery over every policy in the registry.

    Policies that require a fixed level vector (``needs_core_levels``)
    get the standard spread configuration
    (:func:`repro.scenario.registry.spread_levels_for`, which clamps each
    core's level to its own ladder on heterogeneous machines); policies
    declaring ``supports_spawns=False`` skip the nested-spawn check. This
    is what CI runs (``python -m repro.runtime.conformance``), so a newly
    registered policy is conformance-checked with no extra wiring.
    """
    # Imported here: the scenario layer imports runtime modules, so a
    # module-level import would be circular.
    from repro.scenario.registry import POLICIES, spread_levels_for

    if machine is None:
        machine = small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))
    reports = []
    for entry in POLICIES:
        levels = (
            spread_levels_for(machine) if entry.needs_core_levels else None
        )

        def factory(entry=entry, levels=levels) -> SchedulerPolicy:
            return entry.build(core_levels=levels)

        reports.append(
            check_policy(
                factory,
                machine=machine,
                check_spawns=entry.supports_spawns,
                deep=deep,
            )
        )
    return reports


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.runtime.conformance`` — the CI conformance job."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.conformance",
        description="Run the policy conformance battery over every "
        "registered policy.",
    )
    parser.add_argument(
        "--shallow", action="store_true",
        help="skip the deep trace-replay race check",
    )
    parser.add_argument(
        "--machine", choices=("small", "big-little"), default="small",
        help="battery machine: the homogeneous small test machine "
        "(default) or the 4+4 big.LITTLE test machine",
    )
    args = parser.parse_args(argv)
    if args.machine == "big-little":
        from repro.machine.topology import big_little_test_machine

        battery_machine = big_little_test_machine()
    else:
        battery_machine = None
    reports = check_registered_policies(
        machine=battery_machine, deep=not args.shallow
    )
    failed = False
    for report in reports:
        status = "ok" if report.ok else "FAIL"
        print(f"{report.policy_name:10s} {status} ({report.checks_run} checks)")
        for fault, (time_ratio, energy_ratio) in sorted(
            report.fault_degradation.items()
        ):
            print(
                f"    {fault:14s} time x{time_ratio:.3f}  "
                f"energy x{energy_ratio:.3f}"
            )
        for failure in report.failures:
            failed = True
            print(f"  - {failure}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
