"""Execution trace recording.

The trace captures what the paper's figures are drawn from:

* per-batch frequency configurations (Fig. 8: "number of cores with four
  frequencies in the 10 batches of SHA-1");
* per-batch durations and adjuster overheads (Table III);
* DVFS transition log (for debugging and the frequency-timeline example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class BatchTrace:
    """Summary of one executed batch."""

    batch_index: int
    start_time: float
    duration: float
    tasks_completed: int
    #: cores-per-frequency-level at the moment the batch launched
    level_histogram: tuple[int, ...]
    adjust_overhead_seconds: float = 0.0


@dataclass(frozen=True)
class DvfsTransition:
    """One core's P-state switch."""

    time: float
    core_id: int
    from_level: int
    to_level: int


@dataclass
class TraceRecorder:
    """Accumulates batch and DVFS traces during a run."""

    batches: list[BatchTrace] = field(default_factory=list)
    transitions: list[DvfsTransition] = field(default_factory=list)

    def record_batch(self, trace: BatchTrace) -> None:
        self.batches.append(trace)

    def record_transition(self, transition: DvfsTransition) -> None:
        self.transitions.append(transition)

    # -- figure-ready views ----------------------------------------------------

    def level_histograms(self) -> list[tuple[int, ...]]:
        """Per-batch cores-per-level tuples (the Fig. 8 series)."""
        return [b.level_histogram for b in self.batches]

    def batch_durations(self) -> list[float]:
        return [b.duration for b in self.batches]

    def total_adjust_overhead(self) -> float:
        return sum(b.adjust_overhead_seconds for b in self.batches)

    def transitions_for_core(self, core_id: int) -> list[DvfsTransition]:
        return [t for t in self.transitions if t.core_id == core_id]

    def modal_histogram(self, skip_first: bool = True) -> Optional[tuple[int, ...]]:
        """Most frequent per-batch frequency configuration.

        Fig. 7 fixes the asymmetric machine at "the most often used frequency
        configurations in different batches of the benchmark" — this is that
        selection. The first (all-fast, profiling) batch is skipped by
        default.
        """
        hists = self.level_histograms()
        if skip_first:
            hists = hists[1:]
        if not hists:
            return None
        counts: dict[tuple[int, ...], int] = {}
        for h in hists:
            counts[h] = counts.get(h, 0) + 1
        # Deterministic tie-break: highest count, then first-seen order.
        best = max(counts.items(), key=lambda kv: (kv[1], -hists.index(kv[0])))
        return best[0]
