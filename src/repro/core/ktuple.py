"""k-tuple search over the CC table — Algorithm 1 of the paper.

The frequency adjuster must pick, for each task class ``TC_i``, a frequency
level ``a_i`` such that:

1. **capacity** — the selected core counts fit the machine:
   ``sum_i CC[a_i][i] <= m``;
2. **lowest-first** — the search explores low frequencies before high ones
   (energy priority), i.e. ``j`` descends from ``r-1``;
3. **monotonicity** — ``a_i <= a_j`` for ``i < j``: heavier classes (lower
   ``i``; columns are sorted heaviest-first) never run on slower cores than
   lighter ones.

:func:`search_ktuple` is a faithful transcription of the paper's
backtracking Algorithm 1, including its greedy first-feasible-solution
behaviour and ``O(k * r^2)`` worst case. :func:`exhaustive_search`
enumerates every monotone tuple and returns the one minimising a power
estimate — the "more optimal but more expensive" alternative the paper
mentions and we use for the ablation benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.cc_table import CCTable
from repro.errors import SearchError
from repro.machine.power import PowerModel

#: Per-core-type capacity declaration: ordered ``(type name, core count)``
#: pairs, as produced by :meth:`repro.machine.topology.MachineConfig.capacities`.
Capacities = Sequence[tuple[str, int]]


def _capacity_layout(
    table: CCTable, num_cores: int, capacities: Optional[Capacities]
) -> tuple[list[int], list[float]]:
    """Map each CC row (operating point) to a capacity bucket.

    Returns ``(bucket_of_row, budgets)``. With ``capacities=None`` every
    row charges one machine-wide bucket of ``num_cores`` — the paper's
    homogeneous setting. With per-type capacities each row charges its
    core type's bucket, because a core of one type can never realise an
    operating point of another.
    """
    if capacities is None:
        return [0] * table.r, [float(num_cores)]
    names = [name for name, _ in capacities]
    if sorted(names) != sorted(table.scale.types):
        raise SearchError(
            f"capacities declare types {names} but the scale has {list(table.scale.types)}"
        )
    total = sum(count for _, count in capacities)
    if total != num_cores:
        raise SearchError(
            f"capacities sum to {total} cores but the machine has {num_cores}"
        )
    bucket = {name: i for i, name in enumerate(names)}
    bucket_of_row = [bucket[table.scale.core_type_of(j)] for j in range(table.r)]
    budgets = [float(count) for _, count in capacities]
    return bucket_of_row, budgets


@dataclass(frozen=True)
class KTupleSolution:
    """A feasible assignment of task classes to frequency levels.

    ``assignment[i]`` is the level index ``a_i`` for class ``i`` (classes in
    CC-table column order, heaviest first). ``core_demand[i]`` is the
    (real-valued) ``CC[a_i][i]`` core count the class needs at that level.
    """

    assignment: tuple[int, ...]
    core_demand: tuple[float, ...]

    @property
    def total_cores(self) -> float:
        return sum(self.core_demand)

    @property
    def levels_used(self) -> tuple[int, ...]:
        """Distinct levels in ascending (fastest-first) order."""
        return tuple(sorted(set(self.assignment)))

    def demand_by_level(self) -> dict[int, float]:
        """Aggregate core demand per frequency level."""
        demand: dict[int, float] = {}
        for level, cores in zip(self.assignment, self.core_demand):
            demand[level] = demand.get(level, 0.0) + cores
        return demand

    def is_monotone(self) -> bool:
        return all(a <= b for a, b in zip(self.assignment, self.assignment[1:]))


def search_ktuple(
    table: CCTable, num_cores: int, *, capacities: Optional[Capacities] = None
) -> Optional[KTupleSolution]:
    """Algorithm 1: backtracking search for the first feasible k-tuple.

    Returns ``None`` when even the all-fastest assignment does not fit
    (the adjuster then falls back to running everything at the fastest
    operating point, i.e. plain work-stealing behaviour).

    With ``capacities`` given (heterogeneous machines) the capacity
    constraint is enforced per core type: each operating point charges
    only its own type's core budget. With one bucket the arithmetic is
    the paper's single running sum, operation for operation.
    """
    if num_cores < 1:
        raise SearchError("num_cores must be >= 1")
    r, k = table.r, table.k
    cc = table.values
    bucket_of_row, budgets = _capacity_layout(table, num_cores, capacities)
    a = [0] * k
    used = [0.0] * len(budgets)

    def select(i: int, j: int) -> bool:
        b = bucket_of_row[j]
        if cc[j, i] + used[b] <= budgets[b] + 1e-9:
            a[i] = j
            used[b] += cc[j, i]
            return True
        return False

    def search(i: int) -> bool:
        if i >= k:
            return True
        lower = a[i - 1] if i > 0 else 0  # monotonicity bound (constraint 3)
        for j in range(r - 1, lower - 1, -1):  # lowest frequency first (constraint 2)
            if select(i, j):
                if search(i + 1):
                    return True
                used[bucket_of_row[a[i]]] -= cc[a[i], i]
        return False

    if not search(0):
        return None
    assignment = tuple(a)
    demand = tuple(float(cc[j, i]) for i, j in enumerate(assignment))
    return KTupleSolution(assignment=assignment, core_demand=demand)


def default_power_estimate(
    table: CCTable,
    num_cores: Optional[int] = None,
    *,
    capacities: Optional[Capacities] = None,
) -> Callable[[KTupleSolution], float]:
    """Cubic-in-frequency power proxy: ``P(F_j) ~ (F_j / F_0)^3``.

    With affine voltage scaling, ``V^2 f`` is between quadratic and cubic in
    ``f``; the cube is the classic first-order proxy and needs no calibrated
    power model. When ``num_cores`` is given, cores not demanded by any
    class are charged at the slowest level's power — they spin there under
    the default leftover policy, and their count differs between candidate
    tuples, so omitting them would bias the comparison toward fast tuples.
    On heterogeneous machines (``capacities`` given) leftover cores park at
    *their own type's* slowest operating point, so each type's leftover is
    charged at that point's power.
    """
    scale = table.scale

    if num_cores is not None and capacities is not None:
        bucket_of_row, budgets = _capacity_layout(table, num_cores, capacities)
        slowest_of_bucket: dict[int, int] = {}
        for j in range(table.r):  # rows ascend slow-ward, so the last wins
            slowest_of_bucket[bucket_of_row[j]] = j

        def estimate_typed(solution: KTupleSolution) -> float:
            total = sum(
                cores * scale.relative_speed(level) ** 3
                for level, cores in zip(solution.assignment, solution.core_demand)
            )
            used = [0.0] * len(budgets)
            for level, cores in zip(solution.assignment, solution.core_demand):
                used[bucket_of_row[level]] += cores
            for b, budget in enumerate(budgets):
                leftover = max(0.0, budget - used[b])
                total += leftover * scale.relative_speed(slowest_of_bucket[b]) ** 3
            return total

        return estimate_typed

    def estimate(solution: KTupleSolution) -> float:
        total = sum(
            cores * scale.relative_speed(level) ** 3
            for level, cores in zip(solution.assignment, solution.core_demand)
        )
        if num_cores is not None:
            leftover = max(0.0, num_cores - solution.total_cores)
            total += leftover * scale.relative_speed(scale.slowest_index) ** 3
        return total

    return estimate


def power_model_estimate(
    table: CCTable, power: PowerModel, num_cores: Optional[int] = None
) -> Callable[[KTupleSolution], float]:
    """Energy estimate using a calibrated power model.

    Each class's cores run busy for the ideal iteration time ``T``; cores
    left over by the tuple spin at the slowest level (the default leftover
    policy), so with ``num_cores`` given they are charged at that power.
    The machine baseline is identical across candidates and omitted.
    """

    def estimate(solution: KTupleSolution) -> float:
        total = sum(
            power.busy_power(table.scale[level]) * cores
            for level, cores in zip(solution.assignment, solution.core_demand)
        )
        if num_cores is not None:
            leftover = max(0.0, num_cores - solution.total_cores)
            total += leftover * power.busy_power(table.scale.slowest)
        return table.ideal_time * total

    return estimate


def exhaustive_search(
    table: CCTable,
    num_cores: int,
    *,
    estimate: Optional[Callable[[KTupleSolution], float]] = None,
    capacities: Optional[Capacities] = None,
) -> Optional[KTupleSolution]:
    """Enumerate all monotone k-tuples; return the feasible minimum-power one.

    Complexity is ``C(k + r - 1, r - 1)`` candidates — fine for the small
    tables of real machines, and the yardstick the ablation benchmark
    compares Algorithm 1 against. Feasibility, like the backtracking
    search's, is per core-type bucket when ``capacities`` is given.
    """
    if num_cores < 1:
        raise SearchError("num_cores must be >= 1")
    bucket_of_row, budgets = _capacity_layout(table, num_cores, capacities)
    if estimate is None:
        estimate = default_power_estimate(table, num_cores, capacities=capacities)
    r, k = table.r, table.k
    cc = table.values

    best: Optional[KTupleSolution] = None
    best_score = float("inf")
    # Monotone non-decreasing assignments == combinations with repetition.
    for combo in itertools.combinations_with_replacement(range(r), k):
        demand = [float(cc[j, i]) for i, j in enumerate(combo)]
        used = [0.0] * len(budgets)
        for j, d in zip(combo, demand):
            used[bucket_of_row[j]] += d
        if any(u > b + 1e-9 for u, b in zip(used, budgets)):
            continue
        candidate = KTupleSolution(assignment=combo, core_demand=tuple(demand))
        score = estimate(candidate)
        # Strictly better always wins; on an *exact* score tie the later
        # (lexicographically larger, i.e. slower) tuple wins — when two
        # assignments cost the same energy, running slower is the
        # energy-priority choice (more thermal/voltage headroom, and the
        # estimate's tie means the extra time is already paid for).
        if score < best_score - 1e-15 or (best is not None and score == best_score):
            best = candidate
            best_score = score
    return best
