"""Tests for the thermal-headroom analysis."""

import math

import pytest

from repro.analysis.thermal import (
    ThermalParams,
    _piece_update,
    thermal_report,
)
from repro.core.eewa import EEWAScheduler
from repro.errors import ConfigurationError
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program


class TestPieceUpdate:
    def test_converges_to_steady_state(self):
        params = ThermalParams()
        target = params.steady_state_c(20.0)
        t, peak, _ = _piece_update(params.ambient_c, 1000.0, 20.0, params)
        assert t == pytest.approx(target, abs=1e-6)
        assert peak == pytest.approx(target, abs=1e-6)

    def test_exponential_trajectory_exact(self):
        params = ThermalParams(tau_s=2.0)
        watts = 10.0
        target = params.steady_state_c(watts)
        t0 = params.ambient_c
        dt = 2.0  # one time constant
        t1, _, _ = _piece_update(t0, dt, watts, params)
        expected = target + (t0 - target) * math.exp(-1.0)
        assert t1 == pytest.approx(expected)

    def test_cooling_piece(self):
        params = ThermalParams()
        t1, peak, above = _piece_update(90.0, 10.0, 0.0, params)
        assert t1 < 90.0
        assert peak == 90.0
        assert above == 0.0

    def test_throttle_time_full_piece(self):
        params = ThermalParams(throttle_c=50.0)
        # Hot start, high power: entire piece above threshold.
        _, _, above = _piece_update(80.0, 5.0, 40.0, params)
        assert above == pytest.approx(5.0)

    def test_throttle_crossing_partial(self):
        params = ThermalParams(r_th_k_per_w=2.0, tau_s=1.0, throttle_c=65.0)
        # Heating from ambient toward 45 + 20*2 = 85: crosses 65 partway.
        _, _, above = _piece_update(45.0, 10.0, 20.0, params)
        # Crossing time: 65 = 85 + (45-85)e^{-t} -> e^{-t} = 0.5 -> t = ln 2.
        assert above == pytest.approx(10.0 - math.log(2.0), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalParams(r_th_k_per_w=0.0)
        with pytest.raises(ConfigurationError):
            ThermalParams(throttle_c=30.0, ambient_c=45.0)


class TestThermalReport:
    def test_requires_power_series(self):
        machine = opteron_8380_machine()
        program = benchmark_program("MD5", batches=2, seed=1)
        result = simulate(program, CilkScheduler(), machine, seed=1)
        with pytest.raises(ConfigurationError):
            thermal_report(result)

    def test_eewa_runs_cooler_than_cilk(self):
        """The headline extension result: lower frequencies = thermal
        headroom. Compared on mean of per-core peaks."""
        machine = opteron_8380_machine()
        program = benchmark_program("SHA-1", batches=10, seed=11)
        cilk = simulate(
            program, CilkScheduler(), machine, seed=11, record_power_series=True
        )
        eewa = simulate(
            program, EEWAScheduler(), machine, seed=11, record_power_series=True
        )
        cilk_peaks = [c.peak_c for c in thermal_report(cilk).cores]
        eewa_peaks = [c.peak_c for c in thermal_report(eewa).cores]
        assert sum(eewa_peaks) / 16 < sum(cilk_peaks) / 16

    def test_peaks_bounded_by_steady_state(self):
        machine = opteron_8380_machine()
        program = benchmark_program("DMC", batches=3, seed=2)
        result = simulate(
            program, CilkScheduler(), machine, seed=2, record_power_series=True
        )
        params = ThermalParams()
        report = thermal_report(result, params)
        p_max = machine.power.busy_power(machine.scale.fastest)
        assert report.peak_c <= params.steady_state_c(p_max) + 1e-9
        assert all(c.final_c >= params.ambient_c for c in report.cores)

    def test_throttle_detection_with_tight_limit(self):
        machine = opteron_8380_machine()
        program = benchmark_program("MD5", batches=3, seed=2)
        result = simulate(
            program, CilkScheduler(), machine, seed=2, record_power_series=True
        )
        # Absurdly low trip point: everything throttles.
        params = ThermalParams(throttle_c=46.0, tau_s=0.01)
        report = thermal_report(result, params)
        assert report.would_throttle
        assert report.total_throttle_seconds > 0
