"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation runs the same workload with one knob flipped and reports the
energy/time movement:

* backtracking (Algorithm 1) vs exhaustive tuple search;
* discrete (granularity-aware) vs fluid (paper Table I) CC tables;
* leftover-core parking policy;
* per-batch adaptation vs a frozen plan under workload drift;
* preference-based stealing vs plain random stealing on an asymmetric
  config (the Fig. 1(c) failure mode).
"""

from conftest import save_exhibit

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.experiments.report import format_table
from repro.experiments.runner import modal_eewa_levels
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.wats import WATSScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program

BENCH = "SHA-1"
BATCHES = 10
SEED = 11


def _run(config: EEWAConfig | None = None, policy=None):
    machine = opteron_8380_machine()
    program = benchmark_program(BENCH, batches=BATCHES, seed=SEED)
    pol = policy if policy is not None else EEWAScheduler(config)
    return simulate(program, pol, machine, seed=SEED)


def test_bench_ablation_search_algorithm(benchmark, results_dir):
    def run_both():
        bt = _run(EEWAConfig(search="backtracking"))
        ex = _run(EEWAConfig(search="exhaustive"))
        return bt, ex

    bt, ex = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        ["search", "time (ms)", "energy (J)"],
        [
            ("backtracking (Alg. 1)", bt.total_time * 1e3, bt.total_joules),
            ("exhaustive", ex.total_time * 1e3, ex.total_joules),
        ],
        title=f"Ablation — tuple search algorithm ({BENCH})",
    )
    save_exhibit(results_dir, "ablation_search", table)
    # The paper's 'near-optimal' claim: exhaustive saves at most a little
    # more energy; backtracking is never catastrophically worse.
    assert ex.total_joules <= bt.total_joules * 1.02
    assert bt.total_joules <= ex.total_joules * 1.15


def test_bench_ablation_cc_mode(benchmark, results_dir):
    def run_both():
        disc = _run(EEWAConfig(cc_mode="discrete"))
        fluid = _run(EEWAConfig(cc_mode="fluid"))
        return disc, fluid

    disc, fluid = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        ["cc mode", "time (ms)", "energy (J)"],
        [
            ("discrete (granularity-aware)", disc.total_time * 1e3, disc.total_joules),
            ("fluid (paper Table I)", fluid.total_time * 1e3, fluid.total_joules),
        ],
        title=f"Ablation — CC table mode ({BENCH})",
    )
    save_exhibit(results_dir, "ablation_cc_mode", table)
    # The fluid table ignores task granularity, under-provisioning coarse
    # classes: it must cost time relative to the discrete table.
    assert fluid.total_time > disc.total_time


def test_bench_ablation_leftover_policy(benchmark, results_dir):
    def run_all():
        return {
            pol: _run(EEWAConfig(leftover_policy=pol))
            for pol in ("slowest", "join_slowest_group", "fastest")
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["leftover policy", "time (ms)", "energy (J)"],
        [
            (name, r.total_time * 1e3, r.total_joules)
            for name, r in runs.items()
        ],
        title=f"Ablation — leftover-core parking ({BENCH})",
    )
    save_exhibit(results_dir, "ablation_leftover", table)
    # Parking spare cores at the slowest level saves energy vs keeping
    # them spinning at the fastest.
    assert runs["slowest"].total_joules < runs["fastest"].total_joules


def test_bench_ablation_adaptation(benchmark, results_dir):
    def run_both():
        adapt = _run(EEWAConfig(adapt_every_batch=True))
        frozen = _run(EEWAConfig(adapt_every_batch=False))
        return adapt, frozen

    adapt, frozen = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        ["mode", "time (ms)", "energy (J)"],
        [
            ("adapt every batch (paper)", adapt.total_time * 1e3, adapt.total_joules),
            ("frozen after batch 1", frozen.total_time * 1e3, frozen.total_joules),
        ],
        title=f"Ablation — per-batch adaptation under drift ({BENCH})",
    )
    save_exhibit(results_dir, "ablation_adaptation", table)
    # Under drift the frozen plan must not beat adaptation on time by much,
    # and adaptation should not cost much energy. (Both directions small —
    # this documents the trade rather than a dominance.)
    assert adapt.total_time < frozen.total_time * 1.10
    assert adapt.total_joules < frozen.total_joules * 1.10


def test_bench_ablation_preference_stealing(benchmark, results_dir):
    """Fig. 1(c) in the large: random stealing on the asymmetric config
    EEWA chose vs WATS's preference-based stealing on the same config."""

    def run_all():
        machine = opteron_8380_machine()
        levels = modal_eewa_levels(BENCH, batches=BATCHES, seed=SEED)
        program = benchmark_program(BENCH, batches=BATCHES, seed=SEED)
        random_steal = simulate(
            program, CilkScheduler(core_levels=levels), machine, seed=SEED
        )
        preference = simulate(program, WATSScheduler(levels), machine, seed=SEED)
        return random_steal, preference

    random_steal, preference = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["stealing", "time (ms)", "energy (J)"],
        [
            ("random (Cilk)", random_steal.total_time * 1e3, random_steal.total_joules),
            ("preference-based", preference.total_time * 1e3, preference.total_joules),
        ],
        title=f"Ablation — stealing policy on a fixed asymmetric config ({BENCH})",
    )
    save_exhibit(results_dir, "ablation_stealing", table)
    assert preference.total_time < random_steal.total_time


def test_bench_ablation_dvfs_granularity(benchmark, results_dir):
    """Per-core vs per-socket DVFS: the real Opteron 8380 shared frequency
    planes per socket; EEWA's savings shrink when a plane cannot split."""

    def run_both():
        program = benchmark_program(BENCH, batches=BATCHES, seed=SEED)
        fine = opteron_8380_machine()
        coarse = opteron_8380_machine(per_socket_dvfs=True)
        out = {}
        for label, machine in (("per-core", fine), ("per-socket", coarse)):
            cilk = simulate(program, CilkScheduler(), machine, seed=SEED)
            eewa = simulate(program, EEWAScheduler(), machine, seed=SEED)
            out[label] = (cilk, eewa)
        return out

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    savings = {}
    for label, (cilk, eewa) in runs.items():
        saving = 100.0 * (1 - eewa.total_joules / cilk.total_joules)
        savings[label] = saving
        rows.append((label, eewa.total_time * 1e3, eewa.total_joules, saving))
    table = format_table(
        ["DVFS granularity", "eewa time (ms)", "eewa energy (J)", "saving %"],
        rows,
        title=f"Ablation — DVFS granularity ({BENCH})",
    )
    save_exhibit(results_dir, "ablation_dvfs_granularity", table)
    # Coarser planes cost savings but never performance.
    assert 0.0 < savings["per-socket"] < savings["per-core"]
